"""Lookup tables for the 802.11 BER curves and their inverses.

The closed-form BER expressions in :mod:`repro.phy.ber` go through
``scipy.special.erfc`` / ``erfcinv``.  That is numerically exact but it
is also the single hottest function chain in the whole simulator: every
decodable frame at every receiver evaluates ``effective_snr_linear``
(56 subcarriers -> mean BER -> inverse) at least once, and every MPDU
in an A-MPDU evaluates a coded-BER point on top of that.

This module precomputes, once per process and per modulation:

* a dense SNR-dB grid (``SNR_GRID_MIN_DB`` .. ``SNR_GRID_MAX_DB`` in
  ``SNR_GRID_STEP_DB`` steps) carrying the *linear* uncoded BER.  The
  per-sample values are floored at :data:`SAMPLE_BER_FLOOR` (far below
  the inversion floor) so that underflowed subcarriers contribute
  nothing measurable to a mean — exactly like the closed form, where
  the :data:`~repro.phy.ber.BER_FLOOR` clip is applied to the *mean*,
  not per subcarrier.
* a dense log10(BER) grid carrying the *exact* closed-form inverse
  (``snr_for_ber_*``) in dB, including its clipping semantics.

Both grids are *uniform*, so a lookup never needs ``np.interp``'s
per-element binary search: the bucket index is one multiply away
(``pos = (x - grid_min) * inv_step``), and the interpolation is a
gather (``table.take(idx)``) plus one fused multiply-add against a
precomputed slope table.  The scalar entry points and the batched
``(n_links, n_subcarriers)`` entry points in :mod:`repro.phy.batch`
share this exact formulation — same subtraction, same truncation, same
``lo + slope[i] * frac`` — so a batched lookup is bit-identical to the
scalar lookup it replaces, which is what lets the batched medium path
be held to the scalar path as an exact in-tree oracle.

The linear-BER interpolation error is quadratic in the grid step and
maximal where the curve is steepest (near the BER floor,
|d ln BER / d dB| ~ 7); at the 0.05 dB step that bounds the
effective-SNR error near 2e-3 dB, more than an order of magnitude
inside the 0.05 dB equivalence bound enforced by
``tests/test_perf_equivalence.py`` (see ``docs/performance.md`` for
the full error analysis).  The small tables (~2.4k entries per
modulation) stay cache-hot.

A note on ``log10``: numpy's vectorized ``np.log10`` and libm's
``math.log10`` can disagree in the last ulp.  Every log taken on a
value that a batched kernel may also compute goes through ``np.log10``
(scalar numpy calls produce the same bits as the vectorized call), so
scalar and batched inversions agree exactly.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.phy.ber import (
    BER_BY_MODULATION,
    BER_CEILING,
    BER_FLOOR,
    SNR_FOR_BER_BY_MODULATION,
    linear_to_db,
)

#: Forward-table SNR grid (dB).  Inputs outside the grid clamp to the
#: endpoints, which is exact: below the grid every curve has reached its
#: zero-SNR plateau, above it every curve has underflowed past the
#: sample floor.
SNR_GRID_MIN_DB = -60.0
SNR_GRID_MAX_DB = 60.0
SNR_GRID_STEP_DB = 0.05

#: Per-sample floor of the forward tables.  Deliberately far below the
#: inversion floor (1e-15): a clipped subcarrier adds at most 1e-40 to
#: a 56-sample mean, which is invisible next to the floor itself.
SAMPLE_BER_FLOOR = 1e-40

#: Inverse-table grid in log10(BER), inversion floor .. log10(ceiling).
LOG_BER_FLOOR = math.log10(BER_FLOOR)
LOG_BER_CEILING = math.log10(BER_CEILING)
LOG_BER_STEP = 0.001

_SNR_GRID_DB = np.arange(
    SNR_GRID_MIN_DB, SNR_GRID_MAX_DB + SNR_GRID_STEP_DB / 2, SNR_GRID_STEP_DB
)
_INV_SNR_STEP = 1.0 / SNR_GRID_STEP_DB
_N_SNR = len(_SNR_GRID_DB)

_LOG_BER_GRID = np.arange(
    LOG_BER_FLOOR, LOG_BER_CEILING + LOG_BER_STEP / 2, LOG_BER_STEP
)
_INV_LOG_BER_STEP = 1.0 / LOG_BER_STEP
_N_LOG_BER = len(_LOG_BER_GRID)

# ``np.interp``'s Python wrapper (asarray + iscomplexobj + dispatch)
# costs about as much as the compiled search itself on 56-point inputs.
# Bind the compiled core directly — for real-valued float64 input it is
# the exact routine the wrapper calls, so results are bit-identical —
# and fall back to the public entry point if numpy's layout changes.
try:  # numpy >= 2.0
    from numpy._core.multiarray import interp as _interp
except ImportError:  # pragma: no cover - older numpy layouts
    try:
        from numpy.core.multiarray import interp as _interp
    except ImportError:
        _interp = np.interp

interp = _interp  # re-exported for the other repro.phy fast paths


class ModulationLut:
    """Forward (SNR dB -> BER) and inverse (mean BER -> SNR dB) tables
    for one modulation, both sampled from the closed-form curves."""

    __slots__ = (
        "modulation",
        "ber",
        "ber_slope",
        "inv_snr_db",
        "inv_slope",
        "max_ber",
    )

    def __init__(self, modulation: str):
        self.modulation = modulation
        forward = BER_BY_MODULATION[modulation]
        inverse = SNR_FOR_BER_BY_MODULATION[modulation]

        snr_linear = np.power(10.0, _SNR_GRID_DB / 10.0)
        with np.errstate(under="ignore"):
            ber = np.asarray(forward(snr_linear), dtype=float)
        # NB: tables stay writeable — numpy's C fast paths copy
        # read-only buffers on every call, which would cost more than
        # the interpolation itself.  Treat them as frozen.
        self.ber = np.maximum(ber, SAMPLE_BER_FLOOR)
        # The batched gather relies on the top two forward entries being
        # equal (both at the sample floor): a clipped above-grid lookup
        # lands on the last bucket with frac == 1 and a zero slope, so
        # it returns the final entry exactly without a masking pass.
        assert self.ber[-2] == self.ber[-1] == SAMPLE_BER_FLOOR
        #: Per-bucket slopes, precomputed so a lookup is a gather plus
        #: one multiply-add.  ``slope[i] == table[i+1] - table[i]``
        #: bitwise — the same subtraction the runtime lerp used to do.
        self.ber_slope = self.ber[1:] - self.ber[:-1]
        #: The curve's zero-SNR plateau — the largest mean BER any input
        #: can produce; inversion clamps here, mirroring the closed form
        #: (whose input can never exceed it either).
        self.max_ber = float(self.ber[0])

        with np.errstate(under="ignore", divide="ignore"):
            snr_for = inverse(np.power(10.0, _LOG_BER_GRID))
        self.inv_snr_db = np.asarray(linear_to_db(snr_for), dtype=float)
        self.inv_slope = self.inv_snr_db[1:] - self.inv_snr_db[:-1]

    # ------------------------------------------------------------------
    # forward: SNR -> BER
    # ------------------------------------------------------------------

    def ber_of_db(self, snr_db) -> np.ndarray:
        """Uncoded linear BER for an array of SNRs in dB (any shape)."""
        return self.ber_of_db_batch(np.asarray(snr_db, dtype=float))

    def ber_of_db_scalar(self, snr_db: float) -> float:
        """Uncoded BER at one SNR point (dB) — uniform-grid fast path.

        Branch-for-branch the scalar twin of :meth:`ber_of_db_batch`:
        same ``pos`` arithmetic, same truncation, same
        ``lo + slope[i] * frac`` multiply-add, so the two agree bitwise.
        """
        pos = (snr_db - SNR_GRID_MIN_DB) * _INV_SNR_STEP
        if pos <= 0.0:
            return self.max_ber  # == float(self.ber[0])
        if pos >= _N_SNR - 1:
            return float(self.ber[-1])  # == SAMPLE_BER_FLOOR
        if pos != pos:  # NaN input propagates (int(nan) would raise)
            return math.nan
        i = int(pos)
        frac = pos - i
        return float(self.ber[i] + self.ber_slope[i] * frac)

    def ber_of_db_batch(self, snr_db: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ber_of_db_scalar` over any array shape.

        Bit-identical, element for element, to the scalar lookup —
        including the endpoint clamps and NaN propagation.  (The top
        clamp needs no masking pass: the final two table entries are
        equal by construction, so the frac=1 lerp a clipped above-grid
        input produces *is* the final entry; see ``__init__``.)
        """
        snr_db = np.asarray(snr_db, dtype=float)
        pos = (snr_db - SNR_GRID_MIN_DB) * _INV_SNR_STEP
        np.maximum(pos, 0.0, out=pos)  # NaN passes through both clamps
        np.minimum(pos, _N_SNR - 1.0, out=pos)
        with np.errstate(invalid="ignore"):
            idx = pos.astype(np.int64)  # NaN -> INT64_MIN, clamped next
        np.minimum(idx, _N_SNR - 2, out=idx)
        np.maximum(idx, 0, out=idx)
        frac = pos - idx
        out = self.ber.take(idx)
        out += self.ber_slope.take(idx) * frac
        return out

    # ------------------------------------------------------------------
    # inverse: mean BER -> effective SNR
    # ------------------------------------------------------------------

    def snr_db_for_ber(self, ber: float) -> float:
        """Effective SNR (dB) whose flat-channel BER equals ``ber``.

        Matches the clipping closed form: the input is clamped into
        [:data:`~repro.phy.ber.BER_FLOOR`, curve maximum] before the
        table lookup.  The log goes through ``np.log10`` so the result
        is bit-identical to :meth:`snr_db_for_ber_batch` (libm's
        ``math.log10`` can differ in the last ulp).
        """
        if ber != ber:  # NaN in, NaN out
            return math.nan
        if ber <= BER_FLOOR:
            pos = 0.0
        else:
            if ber > self.max_ber:
                ber = self.max_ber
            pos = (float(np.log10(ber)) - LOG_BER_FLOOR) * _INV_LOG_BER_STEP
        if pos <= 0.0:
            return float(self.inv_snr_db[0])
        if pos >= _N_LOG_BER - 1:
            return float(self.inv_snr_db[-1])
        i = int(pos)
        frac = pos - i
        return float(self.inv_snr_db[i] + self.inv_slope[i] * frac)

    def snr_db_for_ber_batch(self, ber: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`snr_db_for_ber` over any array shape —
        bit-identical element for element (clamps, floor, NaN).

        The input clamp into [floor, curve max] pins ``pos`` inside
        ``[0, N-1)`` for every non-NaN input (the curve maximum sits
        strictly below the grid ceiling), so no position clamp is
        needed; the index clamps exist only to absorb the garbage an
        NaN cast produces (its ``frac`` stays NaN and propagates).
        """
        ber = np.asarray(ber, dtype=float)
        with np.errstate(invalid="ignore"):
            clipped = np.maximum(ber, BER_FLOOR)
            np.minimum(clipped, self.max_ber, out=clipped)
            log_ber = np.log10(clipped, out=clipped)
            pos = np.subtract(log_ber, LOG_BER_FLOOR, out=log_ber)
            np.multiply(pos, _INV_LOG_BER_STEP, out=pos)
            idx = pos.astype(np.int64)
        np.minimum(idx, _N_LOG_BER - 2, out=idx)
        np.maximum(idx, 0, out=idx)
        frac = pos - idx
        out = self.inv_snr_db.take(idx)
        out += self.inv_slope.take(idx) * frac
        return out


_LUTS: Dict[str, ModulationLut] = {}


def lut_for(modulation: str) -> ModulationLut:
    """The (lazily built, process-wide) table pair for ``modulation``."""
    lut = _LUTS.get(modulation)
    if lut is None:
        lut = ModulationLut(modulation)
        _LUTS[modulation] = lut
    return lut


# ----------------------------------------------------------------------
# drop-in fast paths used by repro.phy.esnr / repro.phy.per
# ----------------------------------------------------------------------

def effective_snr_db_lut(subcarrier_snr_db, modulation: str) -> float:
    """LUT-based Halperin effective SNR in dB (uncapped).

    Same three steps as the closed form — per-subcarrier BER, mean,
    inverse — with both non-linear maps served from the tables via the
    shared uniform-grid gather, so one row of a batched evaluation
    (:mod:`repro.phy.batch`) reproduces this scalar result bitwise.
    """
    lut = lut_for(modulation)
    ber = lut.ber_of_db_batch(subcarrier_snr_db)
    mean = float(np.add.reduce(ber)) / ber.shape[0]
    return lut.snr_db_for_ber(mean)


def effective_snr_linear_lut(subcarrier_snr_db, modulation: str) -> float:
    """LUT-based effective SNR as a linear power ratio."""
    return 10.0 ** (effective_snr_db_lut(subcarrier_snr_db, modulation) / 10.0)


def mean_ber_lut(
    subcarrier_snr_db, modulation: str, coding_gain_db: float = 0.0
) -> float:
    """LUT-based mean BER across subcarriers (with coding-gain offset)."""
    lut = lut_for(modulation)
    snr_db = np.asarray(subcarrier_snr_db, dtype=float)
    if coding_gain_db:
        snr_db = snr_db + coding_gain_db
    ber = lut.ber_of_db_batch(snr_db)
    return float(np.add.reduce(ber)) / ber.shape[0]


def ber_at_snr_db_lut(modulation: str, snr_db: float) -> float:
    """Uncoded BER at a single (scalar) SNR point in dB."""
    return lut_for(modulation).ber_of_db_scalar(snr_db)
