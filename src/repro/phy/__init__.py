"""802.11n PHY models: MCS table, BER curves, Effective SNR, PER."""

from repro.phy.ber import db_to_linear, linear_to_db
from repro.phy.esnr import (
    effective_snr_db,
    effective_snr_db_exact,
    effective_snr_linear,
    effective_snr_linear_exact,
)
from repro.phy.mcs import (
    BASIC_RATE,
    CONTROL_RATE,
    MCS_TABLE,
    Mcs,
    mcs_by_index,
)
from repro.phy.per import (
    best_rate_bps,
    expected_throughput_bps,
    mpdu_success_probability,
)

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "effective_snr_db",
    "effective_snr_db_exact",
    "effective_snr_linear",
    "effective_snr_linear_exact",
    "BASIC_RATE",
    "CONTROL_RATE",
    "MCS_TABLE",
    "Mcs",
    "mcs_by_index",
    "best_rate_bps",
    "expected_throughput_bps",
    "mpdu_success_probability",
]
