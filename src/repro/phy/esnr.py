"""Effective SNR (Halperin et al., SIGCOMM 2010).

A frequency-selective channel delivers a different SNR on every OFDM
subcarrier; a single wideband RSSI hides exactly the deep per-subcarrier
fades that kill packets. Effective SNR fixes this by going through the
bit-error domain:

1. map each subcarrier SNR to an uncoded BER for a reference modulation,
2. average the BERs across subcarriers,
3. map the mean BER back to the AWGN SNR that would produce it.

The result is "the SNR of the flat channel that would perform the same"
— the quantity WGTT's controller ranks APs by. We use 64-QAM as the
reference modulation: it keeps the metric sensitive across the whole
0–30 dB operating range of the picocell testbed.
"""

from __future__ import annotations

import numpy as np

from repro.phy.ber import (
    BER_BY_MODULATION,
    BER_CEILING,
    BER_FLOOR,
    SNR_FOR_BER_BY_MODULATION,
    db_to_linear,
    linear_to_db,
)

#: Reference modulation for the scalar ESNR summary metric.
DEFAULT_MODULATION = "64qam"
#: ESNR is capped here; beyond it every MCS succeeds anyway.
ESNR_CAP_DB = 45.0


def effective_snr_linear(
    subcarrier_snr_db: np.ndarray, modulation: str = DEFAULT_MODULATION
) -> float:
    """Effective SNR as a linear power ratio."""
    ber = BER_BY_MODULATION[modulation]
    inverse = SNR_FOR_BER_BY_MODULATION[modulation]
    snr_linear = db_to_linear(np.asarray(subcarrier_snr_db, dtype=float))
    mean_ber = float(np.mean(ber(snr_linear)))
    mean_ber = min(max(mean_ber, BER_FLOOR), BER_CEILING)
    return float(inverse(mean_ber))


def effective_snr_db(
    subcarrier_snr_db: np.ndarray, modulation: str = DEFAULT_MODULATION
) -> float:
    """Effective SNR in dB, capped at :data:`ESNR_CAP_DB`."""
    esnr_db = float(linear_to_db(effective_snr_linear(subcarrier_snr_db, modulation)))
    return min(esnr_db, ESNR_CAP_DB)


def mean_ber(
    subcarrier_snr_db: np.ndarray, modulation: str, coding_gain_db: float = 0.0
) -> float:
    """Mean coded BER across subcarriers for a given modulation.

    The convolutional code is credited as an SNR offset before the
    uncoded BER curve — the usual coding-gain approximation.
    """
    ber = BER_BY_MODULATION[modulation]
    snr_linear = db_to_linear(
        np.asarray(subcarrier_snr_db, dtype=float) + coding_gain_db
    )
    return float(np.mean(ber(snr_linear)))
