"""Effective SNR (Halperin et al., SIGCOMM 2010).

A frequency-selective channel delivers a different SNR on every OFDM
subcarrier; a single wideband RSSI hides exactly the deep per-subcarrier
fades that kill packets. Effective SNR fixes this by going through the
bit-error domain:

1. map each subcarrier SNR to an uncoded BER for a reference modulation,
2. average the BERs across subcarriers,
3. map the mean BER back to the AWGN SNR that would produce it.

The result is "the SNR of the flat channel that would perform the same"
— the quantity WGTT's controller ranks APs by. We use 64-QAM as the
reference modulation: it keeps the metric sensitive across the whole
0–30 dB operating range of the picocell testbed.

Hot path: the public entry points are served by the precomputed
log-domain lookup tables in :mod:`repro.phy.lut` (dense SNR-dB grid +
linear interpolation), so the per-frame path never calls
``scipy.special``.  The closed-form scipy implementations survive as
``*_exact`` — they are the reference the equivalence property tests
(``tests/test_perf_equivalence.py``) hold the tables to, within
0.05 dB across the 0–45 dB operating range.
"""

from __future__ import annotations

import numpy as np

from repro.phy.ber import (
    BER_BY_MODULATION,
    BER_CEILING,
    BER_FLOOR,
    SNR_FOR_BER_BY_MODULATION,
    db_to_linear,
    linear_to_db,
)
from repro.phy.lut import lut_for, mean_ber_lut

#: Reference modulation for the scalar ESNR summary metric.
DEFAULT_MODULATION = "64qam"
#: ESNR is capped here; beyond it every MCS succeeds anyway.
ESNR_CAP_DB = 45.0


def effective_snr_linear(
    subcarrier_snr_db: np.ndarray,
    modulation: str = DEFAULT_MODULATION,
    _reduce=np.add.reduce,
) -> float:
    """Effective SNR as a linear power ratio (LUT fast path)."""
    lut = lut_for(modulation)
    ber = lut.ber_of_db_batch(subcarrier_snr_db)
    mean = float(_reduce(ber)) / ber.shape[0]
    return 10.0 ** (lut.snr_db_for_ber(mean) / 10.0)


def effective_snr_db(
    subcarrier_snr_db: np.ndarray,
    modulation: str = DEFAULT_MODULATION,
    _reduce=np.add.reduce,
) -> float:
    """Effective SNR in dB, capped at :data:`ESNR_CAP_DB` (LUT fast path).

    Both non-linear maps go through the shared uniform-grid gather
    kernel (:class:`repro.phy.lut.ModulationLut`), the same kernel the
    batched evaluator (:mod:`repro.phy.batch`) runs on whole link
    stacks — one row of a batch reproduces this result bitwise.  This
    is the single most frequently called function in the simulator.
    """
    lut = lut_for(modulation)
    ber = lut.ber_of_db_batch(subcarrier_snr_db)
    mean = float(_reduce(ber)) / ber.shape[0]
    esnr_db = lut.snr_db_for_ber(mean)
    return esnr_db if esnr_db < ESNR_CAP_DB else ESNR_CAP_DB


def mean_ber(
    subcarrier_snr_db: np.ndarray, modulation: str, coding_gain_db: float = 0.0
) -> float:
    """Mean coded BER across subcarriers for a given modulation.

    The convolutional code is credited as an SNR offset before the
    uncoded BER curve — the usual coding-gain approximation.
    (LUT fast path.)
    """
    return mean_ber_lut(subcarrier_snr_db, modulation, coding_gain_db)


# ----------------------------------------------------------------------
# closed-form (scipy) reference implementations
# ----------------------------------------------------------------------


def effective_snr_linear_exact(
    subcarrier_snr_db: np.ndarray, modulation: str = DEFAULT_MODULATION
) -> float:
    """Closed-form effective SNR as a linear power ratio (scipy path)."""
    ber = BER_BY_MODULATION[modulation]
    inverse = SNR_FOR_BER_BY_MODULATION[modulation]
    snr_linear = db_to_linear(np.asarray(subcarrier_snr_db, dtype=float))
    mean = float(np.mean(ber(snr_linear)))
    mean = min(max(mean, BER_FLOOR), BER_CEILING)
    return float(inverse(mean))


def effective_snr_db_exact(
    subcarrier_snr_db: np.ndarray, modulation: str = DEFAULT_MODULATION
) -> float:
    """Closed-form effective SNR in dB, capped at :data:`ESNR_CAP_DB`."""
    esnr_db = float(
        linear_to_db(effective_snr_linear_exact(subcarrier_snr_db, modulation))
    )
    return min(esnr_db, ESNR_CAP_DB)


def mean_ber_exact(
    subcarrier_snr_db: np.ndarray, modulation: str, coding_gain_db: float = 0.0
) -> float:
    """Closed-form mean coded BER across subcarriers (scipy path)."""
    ber = BER_BY_MODULATION[modulation]
    snr_linear = db_to_linear(
        np.asarray(subcarrier_snr_db, dtype=float) + coding_gain_db
    )
    return float(np.mean(ber(snr_linear)))
