"""802.11n MCS table (HT20, one spatial stream, short guard interval).

The testbed APs feed a single directional antenna through a splitter,
so exactly one spatial stream is available (paper §4.2, footnote 6).
On a 20 MHz channel with short GI that caps the PHY at 72.2 Mbit/s —
consistent with the ~70 Mbit/s 90th-percentile link rate in Figure 16.

Control responses (ACK / block ACK) and management frames use legacy
OFDM rates as real Atheros firmware does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Mcs:
    """One modulation-and-coding scheme."""

    index: int
    modulation: str
    coding_rate: float
    data_rate_bps: int

    @property
    def name(self) -> str:
        return f"MCS{self.index}"

    def airtime_us(self, payload_bits: int) -> float:
        """Payload transmission time, excluding preamble."""
        return payload_bits / self.data_rate_bps * 1e6


#: HT20 / 1SS / short-GI rate set, MCS0–MCS7.
MCS_TABLE: Tuple[Mcs, ...] = (
    Mcs(0, "bpsk", 1 / 2, 7_200_000),
    Mcs(1, "qpsk", 1 / 2, 14_400_000),
    Mcs(2, "qpsk", 3 / 4, 21_700_000),
    Mcs(3, "16qam", 1 / 2, 28_900_000),
    Mcs(4, "16qam", 3 / 4, 43_300_000),
    Mcs(5, "64qam", 2 / 3, 57_800_000),
    Mcs(6, "64qam", 3 / 4, 65_000_000),
    Mcs(7, "64qam", 5 / 6, 72_200_000),
)

#: Legacy OFDM rate used for block ACKs and other control responses.
CONTROL_RATE = Mcs(-1, "16qam", 1 / 2, 24_000_000)
#: Most robust legacy rate, used for beacons and management frames.
BASIC_RATE = Mcs(-2, "bpsk", 1 / 2, 6_000_000)

#: Coding gain (dB) credited to the convolutional code at each rate,
#: applied to SNR before the uncoded-BER curves in :mod:`repro.phy.ber`.
CODING_GAIN_DB = {
    1 / 2: 5.5,
    2 / 3: 4.5,
    3 / 4: 4.0,
    5 / 6: 3.0,
}


def mcs_by_index(index: int) -> Mcs:
    """Look up a data MCS by its 802.11n index (0–7)."""
    if not 0 <= index < len(MCS_TABLE):
        raise ValueError(f"no such MCS index: {index}")
    return MCS_TABLE[index]
