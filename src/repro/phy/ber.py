"""Uncoded bit-error-rate curves for the 802.11 modulations.

These are the standard AWGN expressions used by Halperin et al.'s
Effective SNR work ("Predictable 802.11 packet delivery from wireless
channel measurements", SIGCOMM 2010), which WGTT builds on:

    BPSK    Q(sqrt(2 * snr))
    QPSK    Q(sqrt(snr))
    16-QAM  3/4 * Q(sqrt(snr / 5))
    64-QAM  7/12 * Q(sqrt(snr / 21))

All functions accept scalars or numpy arrays of *linear* SNR and are
invertible, which is what lets a mean-BER across subcarriers be mapped
back to a single AWGN-equivalent "effective" SNR.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc, erfcinv

#: BER is clipped into this range before inversion so that saturated
#: (underflowed) measurements stay finite and ordered.
BER_FLOOR = 1e-15
BER_CEILING = 0.5


def q_function(x):
    """Gaussian tail probability Q(x)."""
    return 0.5 * erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def q_inverse(p):
    """Inverse of :func:`q_function`."""
    return np.sqrt(2.0) * erfcinv(2.0 * np.asarray(p, dtype=float))


def ber_bpsk(snr_linear):
    return q_function(np.sqrt(2.0 * np.maximum(snr_linear, 0.0)))


def ber_qpsk(snr_linear):
    return q_function(np.sqrt(np.maximum(snr_linear, 0.0)))


def ber_16qam(snr_linear):
    return 0.75 * q_function(np.sqrt(np.maximum(snr_linear, 0.0) / 5.0))


def ber_64qam(snr_linear):
    return (7.0 / 12.0) * q_function(np.sqrt(np.maximum(snr_linear, 0.0) / 21.0))


def snr_for_ber_bpsk(ber):
    return q_inverse(np.clip(ber, BER_FLOOR, BER_CEILING)) ** 2 / 2.0


def snr_for_ber_qpsk(ber):
    return q_inverse(np.clip(ber, BER_FLOOR, BER_CEILING)) ** 2


def snr_for_ber_16qam(ber):
    scaled = np.clip(np.asarray(ber, dtype=float) / 0.75, BER_FLOOR, BER_CEILING)
    return 5.0 * q_inverse(scaled) ** 2


def snr_for_ber_64qam(ber):
    scaled = np.clip(
        np.asarray(ber, dtype=float) * 12.0 / 7.0, BER_FLOOR, BER_CEILING
    )
    return 21.0 * q_inverse(scaled) ** 2


BER_BY_MODULATION = {
    "bpsk": ber_bpsk,
    "qpsk": ber_qpsk,
    "16qam": ber_16qam,
    "64qam": ber_64qam,
}

SNR_FOR_BER_BY_MODULATION = {
    "bpsk": snr_for_ber_bpsk,
    "qpsk": snr_for_ber_qpsk,
    "16qam": snr_for_ber_16qam,
    "64qam": snr_for_ber_64qam,
}


def db_to_linear(db):
    """Convert dB to a linear power ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear):
    """Convert a linear power ratio to dB (floored to avoid -inf)."""
    return 10.0 * np.log10(np.maximum(np.asarray(linear, dtype=float), 1e-30))
