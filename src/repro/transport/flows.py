"""Flow plumbing: hosts that demultiplex packets to transport endpoints.

A :class:`Host` is the IP endpoint riding on a node (the content server
behind the controller, or a vehicular client's network stack). Flows
register themselves by ``flow_id``; arriving packets are dispatched to
the right transport object, with TCP data/ACK direction resolved from
the packet metadata.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.net.packet import Packet
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.transport.udp import UdpSink


class Host:
    """Demultiplexes received packets to transport endpoints."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self._tcp_senders: Dict[str, TcpSender] = {}
        self._tcp_receivers: Dict[str, TcpReceiver] = {}
        self._udp_sinks: Dict[str, UdpSink] = {}
        self._raw_handlers: Dict[str, Callable[[Packet], None]] = {}
        self.unrouted = 0

    def attach_tcp_sender(self, sender: TcpSender) -> None:
        self._tcp_senders[sender.flow_id] = sender

    def attach_tcp_receiver(self, receiver: TcpReceiver) -> None:
        self._tcp_receivers[receiver.flow_id] = receiver

    def attach_udp_sink(self, sink: UdpSink) -> None:
        self._udp_sinks[sink.flow_id] = sink

    def detach_udp_sink(self, flow_id: str) -> None:
        """Drop a finished flow's sink.

        Churn soaks attach thousands of short flows to the server host;
        without detaching, every sink (and its per-packet arrival list)
        would be pinned for the whole run.  Late packets for a detached
        flow count in ``unrouted``.
        """
        self._udp_sinks.pop(flow_id, None)

    def attach_raw(self, flow_id: str, handler: Callable[[Packet], None]) -> None:
        """Escape hatch for application-specific protocols."""
        self._raw_handlers[flow_id] = handler

    def deliver(self, packet: Packet) -> None:
        """Entry point from the network layer below."""
        flow_id = packet.flow_id
        if flow_id in self._raw_handlers:
            self._raw_handlers[flow_id](packet)
            return
        if packet.protocol == "udp":
            sink = self._udp_sinks.get(flow_id)
            if sink is not None:
                sink.on_packet(packet)
                return
        elif packet.protocol == "tcp":
            if packet.meta.get("kind") == "ack":
                sender = self._tcp_senders.get(flow_id)
                if sender is not None:
                    sender.on_ack(packet)
                    return
            else:
                receiver = self._tcp_receivers.get(flow_id)
                if receiver is not None:
                    receiver.on_packet(packet)
                    return
        self.unrouted += 1
