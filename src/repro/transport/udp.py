"""UDP flows: constant-bit-rate source and measuring sink.

The paper's UDP experiments are iperf3-style CBR streams (50–90 Mbit/s
offered load in the microbenchmarks, 15 Mbit/s in the multi-client
cases). The sink records every arrival so the analysis layer can build
received-sequence-number plots (Figure 4), throughput timeseries
(Figure 15), and loss-rate timeseries (Figure 18).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sim.engine import SECOND, Simulator, Timer

#: Default UDP payload matching iperf3's 1470-byte datagrams + headers.
UDP_PACKET_BYTES = 1498


class UdpSource:
    """Constant-rate datagram generator."""

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        rate_bps: float,
        send_fn: Callable[[Packet], None],
        flow_id: str = "udp",
        packet_bytes: int = UDP_PACKET_BYTES,
    ):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self._sim = sim
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self._send_fn = send_fn
        self._interval_us = max(1, int(packet_bytes * 8 / rate_bps * SECOND))
        self._next_seq = 0
        self._timer = Timer(sim, self._emit)
        self._running = False
        self.packets_sent = 0

    def start(self, delay_us: int = 0) -> None:
        self._running = True
        self._timer.start(delay_us)

    def stop(self) -> None:
        self._running = False
        self._timer.stop()

    def _emit(self) -> None:
        if not self._running:
            return
        packet = Packet(
            src=self.src,
            dst=self.dst,
            size_bytes=self.packet_bytes,
            protocol="udp",
            flow_id=self.flow_id,
            seq=self._next_seq,
            created_us=self._sim.now,
        )
        self._next_seq += 1
        self.packets_sent += 1
        self._send_fn(packet)
        self._timer.start(self._interval_us)


class UdpSink:
    """Arrival recorder for one UDP flow."""

    def __init__(self, sim: Simulator, flow_id: str = "udp"):
        self._sim = sim
        self.flow_id = flow_id
        #: (arrival_time_us, seq, size_bytes, one_way_delay_us)
        self.arrivals: List[Tuple[int, int, int, int]] = []
        self._seen = set()
        self.duplicates = 0

    def on_packet(self, packet: Packet) -> None:
        if packet.seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(packet.seq)
        self.arrivals.append(
            (
                self._sim.now,
                packet.seq,
                packet.size_bytes,
                self._sim.now - packet.created_us,
            )
        )

    # -- metrics -------------------------------------------------------

    def packets_received(self) -> int:
        return len(self.arrivals)

    def bytes_received(self) -> int:
        return sum(size for _, _, size, _ in self.arrivals)

    def throughput_bps(self, start_us: int, end_us: int) -> float:
        window = end_us - start_us
        if window <= 0:
            return 0.0
        received = sum(
            size
            for time_us, _, size, _ in self.arrivals
            if start_us <= time_us < end_us
        )
        return received * 8 / (window / SECOND)

    def loss_rate(self, expected: Optional[int] = None) -> float:
        """Fraction of offered datagrams that never arrived."""
        if expected is None:
            expected = (max(self._seen) + 1) if self._seen else 0
        if expected == 0:
            return 0.0
        return 1.0 - min(len(self._seen), expected) / expected

    def throughput_series_mbps(
        self, duration_us: int, bin_us: int = SECOND
    ) -> List[float]:
        """Per-bin throughput in Mbit/s over [0, duration_us)."""
        bins = [0.0] * max(1, (duration_us + bin_us - 1) // bin_us)
        for time_us, _, size, _ in self.arrivals:
            index = time_us // bin_us
            if 0 <= index < len(bins):
                bins[index] += size * 8
        return [b / (bin_us / SECOND) / 1e6 for b in bins]

    def mean_delay_us(self) -> float:
        if not self.arrivals:
            return 0.0
        return sum(d for _, _, _, d in self.arrivals) / len(self.arrivals)
