"""TCP Reno over the simulated network.

A faithful-enough Reno for the paper's experiments: slow start,
congestion avoidance, triple-duplicate fast retransmit with window
inflation, RTO with exponential backoff, and Karn-compliant RTT
sampling. Segments are counted in whole MSS units — WGTT's experiments
are bulk or streaming transfers, so sub-segment byte accounting adds
nothing but bookkeeping.

TCP timeouts are load-bearing for the reproduction: the baseline's
stalled handovers blow straight through the RTO (paper Figure 14, "TCP
timeout at ~5.86 s"), while WGTT's millisecond switching keeps the ACK
clock ticking.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from repro.net.packet import Packet
from repro.sim.engine import SECOND, Simulator, Timer

#: Maximum segment size (payload bytes per segment).
MSS = 1448
#: Wire size of a data segment (MSS + TCP/IP headers).
SEGMENT_BYTES = MSS + 52
#: Wire size of a pure ACK.
ACK_BYTES = 52
#: Initial window (RFC 6928).
INITIAL_CWND = 10.0
#: RTO bounds (Linux-like 200 ms floor).
MIN_RTO_US = 200_000
MAX_RTO_US = 60 * SECOND
INITIAL_RTO_US = SECOND
#: Receive window in segments (the paper's laptops auto-tune large).
RECEIVE_WINDOW = 512


class TcpSender:
    """Reno sender for one unidirectional flow."""

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        send_fn: Callable[[Packet], None],
        flow_id: str = "tcp",
        bulk: bool = True,
    ):
        self._sim = sim
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self._send_fn = send_fn
        #: Bulk flows always have data; app-limited flows use supply().
        self._bulk = bulk
        self._supplied_segments = 0

        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = INITIAL_CWND
        self.ssthresh = float(RECEIVE_WINDOW)
        self._dup_acks = 0
        self._recover = 0
        self._in_recovery = False

        self._srtt_us: Optional[float] = None
        self._rttvar_us = 0.0
        self.rto_us = INITIAL_RTO_US
        self._timed_seq: Optional[int] = None
        self._timed_at = 0
        self._rto_timer = Timer(sim, self._on_rto)
        #: Go-back-N state after an RTO: segments below this mark are
        #: presumed lost and are retransmitted under slow start as ACKs
        #: advance (classic Reno-without-SACK timeout recovery).
        self._rto_recover_mark = 0
        self._rto_retx_high = 0

        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.timeout_log: List[int] = []

    # -- app interface --------------------------------------------------

    def start(self) -> None:
        self._try_send()

    def supply(self, num_segments: int) -> None:
        """Make more application data available (app-limited flows)."""
        self._supplied_segments += num_segments
        self._try_send()

    def acked_segments(self) -> int:
        return self.snd_una

    def acked_bytes(self) -> int:
        return self.snd_una * MSS

    def throughput_mbps(self, duration_us: int) -> float:
        if duration_us <= 0:
            return 0.0
        return self.acked_bytes() * 8 / (duration_us / SECOND) / 1e6

    # -- segment emission ------------------------------------------------

    def _available(self) -> int:
        if self._bulk:
            return 1 << 30
        return max(0, self._supplied_segments - self.snd_nxt)

    def _window_limit(self) -> int:
        return self.snd_una + int(min(self.cwnd, RECEIVE_WINDOW))

    def _try_send(self) -> None:
        while self.snd_nxt < self._window_limit() and self._available() > 0:
            self._emit(self.snd_nxt)
            self.snd_nxt += 1
        if not self._rto_timer.armed and self.snd_nxt > self.snd_una:
            self._rto_timer.start(self.rto_us)

    def _emit(self, seq: int, retransmission: bool = False) -> None:
        packet = Packet(
            src=self.src,
            dst=self.dst,
            size_bytes=SEGMENT_BYTES,
            protocol="tcp",
            flow_id=self.flow_id,
            seq=seq,
            created_us=self._sim.now,
        )
        packet.meta["kind"] = "data"
        self.segments_sent += 1
        if retransmission:
            self.retransmits += 1
            # Karn: never time a retransmitted segment.
            if self._timed_seq == seq:
                self._timed_seq = None
        elif self._timed_seq is None:
            self._timed_seq = seq
            self._timed_at = self._sim.now
        self._send_fn(packet)

    # -- ACK processing ---------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        ack = packet.meta.get("ack", packet.seq)
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.snd_nxt > self.snd_una:
            self._on_dup_ack()
        self._try_send()

    def _on_new_ack(self, ack: int) -> None:
        newly = ack - self.snd_una
        self.snd_una = ack
        if self._timed_seq is not None and ack > self._timed_seq:
            self._sample_rtt(self._sim.now - self._timed_at)
            self._timed_seq = None
        if newly > 0:
            # Forward progress undoes exponential RTO backoff (as Linux
            # does): the path is alive again.
            self._reset_rto_from_estimator()
        if self._in_recovery:
            if ack >= self._recover:
                self._in_recovery = False
                self.cwnd = self.ssthresh
                self._dup_acks = 0
            else:
                # Partial ACK: retransmit the next hole, deflate.
                self._emit(self.snd_una, retransmission=True)
                self.cwnd = max(self.cwnd - newly + 1, 1.0)
        else:
            self._dup_acks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += newly  # slow start
            else:
                self.cwnd += newly / self.cwnd  # congestion avoidance
        # Go-back-N after a timeout: everything between the ACK and the
        # recovery mark was in flight when the path died; retransmit it
        # under the growing window rather than one segment per RTO.
        if self.snd_una < self._rto_recover_mark:
            self._rto_retx_high = max(self._rto_retx_high, self.snd_una)
            limit = min(
                self.snd_una + int(self.cwnd), self._rto_recover_mark
            )
            while self._rto_retx_high < limit:
                self._emit(self._rto_retx_high, retransmission=True)
                self._rto_retx_high += 1
        if self.snd_nxt == self.snd_una:
            self._rto_timer.stop()
        else:
            self._rto_timer.start(self.rto_us)

    def _on_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._in_recovery:
            self.cwnd += 1.0  # window inflation per extra dup
        elif self._dup_acks == 3:
            flight = self.snd_nxt - self.snd_una
            self.ssthresh = max(flight / 2.0, 2.0)
            self.cwnd = self.ssthresh + 3.0
            self._in_recovery = True
            self._recover = self.snd_nxt
            self._emit(self.snd_una, retransmission=True)

    def _on_rto(self) -> None:
        if self.snd_nxt == self.snd_una:
            return
        self.timeouts += 1
        self.timeout_log.append(self._sim.now)
        flight = self.snd_nxt - self.snd_una
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = 1.0
        self._dup_acks = 0
        self._in_recovery = False
        self.rto_us = min(self.rto_us * 2, MAX_RTO_US)
        self._timed_seq = None
        self._rto_recover_mark = self.snd_nxt
        self._rto_retx_high = self.snd_una + 1
        self._emit(self.snd_una, retransmission=True)
        self._rto_timer.start(self.rto_us)

    def _reset_rto_from_estimator(self) -> None:
        if self._srtt_us is None:
            self.rto_us = INITIAL_RTO_US
            return
        self.rto_us = int(
            min(
                max(self._srtt_us + 4 * self._rttvar_us, MIN_RTO_US),
                MAX_RTO_US,
            )
        )

    def _sample_rtt(self, rtt_us: int) -> None:
        if self._srtt_us is None:
            self._srtt_us = float(rtt_us)
            self._rttvar_us = rtt_us / 2.0
        else:
            delta = abs(self._srtt_us - rtt_us)
            self._rttvar_us = 0.75 * self._rttvar_us + 0.25 * delta
            self._srtt_us = 0.875 * self._srtt_us + 0.125 * rtt_us
        self.rto_us = int(
            min(max(self._srtt_us + 4 * self._rttvar_us, MIN_RTO_US), MAX_RTO_US)
        )

    @property
    def srtt_us(self) -> Optional[float]:
        return self._srtt_us


class TcpReceiver:
    """Cumulative-ACK receiver for one flow."""

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        send_fn: Callable[[Packet], None],
        flow_id: str = "tcp",
    ):
        self._sim = sim
        self.src = src  # this endpoint (the ACK sender)
        self.dst = dst  # the data sender
        self.flow_id = flow_id
        self._send_fn = send_fn
        self.rcv_nxt = 0
        self._out_of_order: Set[int] = set()
        self.duplicates = 0
        #: (arrival_time_us, cumulative_segments) for goodput series.
        self.delivery_log: List[Tuple[int, int]] = []
        self.on_deliver: Callable[[int], None] = lambda segments: None

    def on_packet(self, packet: Packet) -> None:
        seq = packet.seq
        if seq < self.rcv_nxt or seq in self._out_of_order:
            self.duplicates += 1
        else:
            self._out_of_order.add(seq)
            advanced = 0
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += 1
                advanced += 1
            if advanced:
                self.delivery_log.append((self._sim.now, self.rcv_nxt))
                self.on_deliver(advanced)
        self._send_ack()

    def _send_ack(self) -> None:
        ack = Packet(
            src=self.src,
            dst=self.dst,
            size_bytes=ACK_BYTES,
            protocol="tcp",
            flow_id=self.flow_id,
            seq=self.rcv_nxt,
            created_us=self._sim.now,
        )
        ack.meta["kind"] = "ack"
        ack.meta["ack"] = self.rcv_nxt
        self._send_fn(ack)

    def delivered_bytes(self) -> int:
        return self.rcv_nxt * MSS

    def goodput_series_mbps(
        self, duration_us: int, bin_us: int = SECOND
    ) -> List[float]:
        """Per-bin application goodput in Mbit/s."""
        bins = [0.0] * max(1, (duration_us + bin_us - 1) // bin_us)
        last = 0
        for time_us, cumulative in self.delivery_log:
            index = time_us // bin_us
            if 0 <= index < len(bins):
                bins[index] += (cumulative - last) * MSS * 8
            last = cumulative
        return [b / (bin_us / SECOND) / 1e6 for b in bins]
