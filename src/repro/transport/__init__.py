"""Transport layer: TCP Reno, UDP CBR, host demultiplexing."""

from repro.transport.flows import Host
from repro.transport.tcp import (
    ACK_BYTES,
    INITIAL_CWND,
    MIN_RTO_US,
    MSS,
    SEGMENT_BYTES,
    TcpReceiver,
    TcpSender,
)
from repro.transport.udp import UDP_PACKET_BYTES, UdpSink, UdpSource

__all__ = [
    "Host",
    "ACK_BYTES",
    "INITIAL_CWND",
    "MIN_RTO_US",
    "MSS",
    "SEGMENT_BYTES",
    "TcpReceiver",
    "TcpSender",
    "UDP_PACKET_BYTES",
    "UdpSink",
    "UdpSource",
]
