"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common workflows:

* ``drive``       — one drive-by under either scheme, summarized.
                    ``--trace``/``--profile``/``--metrics`` switch on
                    the observability layer (``repro.obs``).
* ``experiment``  — run a paper table/figure driver and print its rows.
* ``soak``        — an SLO-guarded endurance run (``repro.soak``):
                    heavy-tailed churn, continuous faults, optional
                    admission control; nonzero exit on any violation.
* ``list``        — enumerate the available experiment drivers.

Experiment ids come from the registration decorator
(:mod:`repro.experiments.registry`); the hand-maintained ``EXPERIMENTS``
dict is gone.  A deprecation shim keeps the old name importable.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from collections.abc import Mapping
from typing import Iterator, List, Optional

from repro.experiments import registry as experiment_registry
from repro.experiments.common import format_table
from repro.experiments.registry import ExperimentConfig


class _DeprecatedExperiments(Mapping):
    """Read-only view of the registry under the legacy ``EXPERIMENTS``
    name.  Iteration/lookup works as before (id -> description); any
    use warns once per call site."""

    def _descriptions(self) -> dict:
        warnings.warn(
            "repro.cli.EXPERIMENTS is deprecated; use "
            "repro.experiments.registry (experiment_ids()/descriptions())",
            DeprecationWarning,
            stacklevel=3,
        )
        return experiment_registry.descriptions()

    def __getitem__(self, key: str) -> str:
        return self._descriptions()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._descriptions())

    def __len__(self) -> int:
        return len(self._descriptions())


#: Deprecated: the registry is the source of truth now.
EXPERIMENTS = _DeprecatedExperiments()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wi-Fi Goes to Town (SIGCOMM 2017) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    drive = sub.add_parser("drive", help="run one drive-by and summarize")
    drive.add_argument("--scheme", choices=("wgtt", "baseline"), default="wgtt")
    drive.add_argument("--speed", type=float, default=15.0, metavar="MPH")
    drive.add_argument(
        "--preset", metavar="NAME", default=None,
        help="start from a scenario preset (repro.scenarios.presets; "
        "e.g. mixed-density, shard-corridor); --seed/--scheme still "
        "apply, and --speed applies unless the preset pins its own "
        "client tracks",
    )
    drive.add_argument(
        "--protocol", choices=("tcp", "udp"), default="tcp"
    )
    drive.add_argument("--seconds", type=float, default=None)
    drive.add_argument("--seed", type=int, default=3)
    drive.add_argument("--udp-rate-mbps", type=float, default=50.0)
    drive.add_argument(
        "--trace", metavar="PREFIX", default=None,
        help="record a structured trace; writes PREFIX.jsonl and "
        "PREFIX.trace.json (chrome://tracing / Perfetto)",
    )
    drive.add_argument(
        "--trace-detail", action="store_true",
        help="also keep per-packet trace events (large files)",
    )
    drive.add_argument(
        "--profile", action="store_true",
        help="profile the engine hot loop and print the breakdown",
    )
    drive.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export a metrics-registry snapshot as JSON",
    )

    experiment = sub.add_parser(
        "experiment", help="run a paper table/figure driver"
    )
    experiment.add_argument(
        "id", choices=experiment_registry.experiment_ids()
    )
    experiment.add_argument("--seed", type=int, default=3)
    experiment.add_argument(
        "--full", action="store_true",
        help="full sweep instead of the quick one",
    )
    experiment.add_argument(
        "--smoke", action="store_true",
        help="run the driver's CI smoke variant (where provided)",
    )
    experiment.add_argument(
        "--json", action="store_true", help="emit raw JSON instead of tables"
    )
    experiment.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for grid fan-out (0 = all cores); "
        "results are byte-identical to --jobs 1 for the same seeds",
    )

    soak = sub.add_parser(
        "soak",
        help="SLO-guarded endurance run: churn + faults + guard",
    )
    soak.add_argument("--seed", type=int, default=1)
    soak.add_argument(
        "--seconds", type=float, default=60.0,
        help="sim-time duration of the soak",
    )
    soak.add_argument(
        "--arrival-rate", type=float, default=1.0, metavar="PER_S",
        help="Poisson rider arrival rate",
    )
    soak.add_argument(
        "--max-concurrent", type=int, default=64,
        help="rider population cap (excess arrivals are rejected)",
    )
    soak.add_argument(
        "--fault-intensity", type=float, default=1.0,
        help="continuous-chaos intensity multiplier (0 = no faults)",
    )
    soak.add_argument(
        "--admission", action="store_true",
        help="enable per-client fair pacing at the controller",
    )
    soak.add_argument(
        "--no-backpressure", action="store_true",
        help="disable the serving-AP watermark backpressure signal",
    )
    soak.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream guard samples/checkpoints/violations as JSONL",
    )
    soak.add_argument(
        "--fail-fast", action="store_true",
        help="raise on the first SLO violation instead of collecting",
    )

    sub.add_parser("list", help="list available experiment drivers")
    return parser


def cmd_drive(args) -> int:
    from repro.apps.bulk import run_bulk_download
    from repro.obs.context import ObsConfig
    from repro.scenarios.testbed import TestbedConfig

    if args.trace_detail and args.trace is None:
        print("error: --trace-detail requires --trace", file=sys.stderr)
        return 2
    obs = None
    want_obs = args.trace is not None or args.profile or args.metrics
    if want_obs:
        obs = ObsConfig(
            trace=args.trace is not None,
            detail=args.trace_detail,
            profile=args.profile,
        )
    if args.preset is not None:
        from repro.scenarios.presets import preset

        try:
            config = preset(
                args.preset, seed=args.seed, scheme=args.scheme, obs=obs
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if config.client_tracks is None:
            config.client_speeds_mph = [args.speed]
    else:
        config = TestbedConfig(
            seed=args.seed,
            scheme=args.scheme,
            client_speeds_mph=[args.speed],
            obs=obs,
        )
    try:
        result = run_bulk_download(
            config,
            protocol=args.protocol,
            duration_s=args.seconds,
            udp_rate_bps=args.udp_rate_mbps * 1e6,
            keep_testbed=bool(want_obs),
        )
    except ValueError as error:
        # e.g. a sharded preset driven with --scheme baseline.
        print(f"error: {error}", file=sys.stderr)
        return 2
    label = f" [{args.preset}]" if args.preset is not None else ""
    print(
        f"{args.scheme}{label} / {args.protocol.upper()} at "
        f"{args.speed:g} mph for {result.duration_s:.1f} s"
    )
    print(f"  throughput : {result.throughput_mbps:.2f} Mbit/s")
    print(f"  switches   : {result.switch_count}")
    if args.protocol == "tcp":
        print(f"  timeouts   : {result.tcp_timeouts}")
    series = " ".join(f"{g:.1f}" for g in result.goodput_series_mbps)
    print(f"  goodput/s  : {series}")
    if want_obs:
        testbed = result.testbed
        tracer = testbed.sim.obs.trace
        if args.trace is not None:
            tracer.finish()
            count = tracer.export_jsonl(f"{args.trace}.jsonl")
            tracer.export_chrome(f"{args.trace}.trace.json")
            print(f"  trace      : {count} records -> {args.trace}.jsonl")
            print(f"               chrome view  -> {args.trace}.trace.json")
        if args.metrics is not None:
            testbed.sim.obs.metrics.export_json(args.metrics)
            print(f"  metrics    : {args.metrics}")
        if args.profile and testbed.sim.obs.profiler is not None:
            print(testbed.sim.obs.profiler.report())
    return 0


def _run_experiment(experiment_id: str, seed: int, quick: bool, jobs: int = 1):
    """Legacy helper (kept for callers of the old CLI internals)."""
    experiment = experiment_registry.get(experiment_id)
    result = experiment.run(
        ExperimentConfig(seed=seed, quick=quick), jobs=jobs
    )
    return result.data


def cmd_experiment(args) -> int:
    experiment = experiment_registry.get(args.id)
    try:
        result = experiment.run(
            ExperimentConfig(seed=args.seed, quick=not args.full),
            jobs=getattr(args, "jobs", 1),
            smoke=args.smoke,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    data = result.data
    if args.json:
        print(json.dumps(data, default=_json_default, indent=2))
        return 0
    rows = result.rows()
    if rows is not None:
        columns = list(rows[0].keys()) if rows else []
        print(format_table(rows, columns))
    else:
        print(json.dumps(_summarize(data), default=_json_default, indent=2))
    return 0


def _summarize(value, depth=0):
    """Keep CLI output readable: elide long series at the top levels."""
    if isinstance(value, dict):
        return {k: _summarize(v, depth + 1) for k, v in value.items()}
    if isinstance(value, (list, tuple)) and len(value) > 12:
        return f"<{len(value)} values>"
    return value


def _json_default(value):
    try:
        import numpy as np

        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return value.tolist()
    except ImportError:  # pragma: no cover
        pass
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def cmd_soak(args) -> int:
    from repro.soak.harness import SoakConfig, run_soak
    from repro.soak.workload import WorkloadConfig

    config = SoakConfig(
        seed=args.seed,
        duration_s=args.seconds,
        fault_intensity=args.fault_intensity,
        admission_enabled=args.admission,
        backpressure_enabled=not args.no_backpressure,
        workload=WorkloadConfig(
            arrival_rate_per_s=args.arrival_rate,
            max_concurrent=args.max_concurrent,
        ),
        telemetry_path=args.telemetry,
        fail_fast=args.fail_fast,
    )
    result = run_soak(config)
    print(result.summary())
    if args.telemetry is not None:
        print(f"  telemetry  : {args.telemetry}")
    for violation in result.violations:
        print(f"  VIOLATION  : {json.dumps(violation, default=str)}")
    return 0 if result.ok else 1


def cmd_list(_args) -> int:
    descriptions = experiment_registry.descriptions()
    width = max(len(k) for k in descriptions)
    for key in sorted(descriptions):
        print(f"{key.ljust(width)}  {descriptions[key]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "drive": cmd_drive,
        "experiment": cmd_experiment,
        "soak": cmd_soak,
        "list": cmd_list,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `wgtt-repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
