"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows:

* ``drive``       — one drive-by under either scheme, summarized.
* ``experiment``  — run a paper table/figure driver and print its rows.
* ``list``        — enumerate the available experiment drivers.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.common import format_table

#: Experiment ids -> (module name, description).
EXPERIMENTS = {
    "fig02": "ESNR dynamics / best-AP flip rate",
    "fig04": "stock 802.11r handover failure",
    "tab01": "switching-protocol execution time",
    "fig10": "ESNR coverage heatmap",
    "fig13": "throughput vs speed, both schemes",
    "fig14": "TCP timeseries + association timeline",
    "fig15": "UDP timeseries + association timeline",
    "fig16": "link bit-rate CDF",
    "tab02": "switching accuracy",
    "fig17": "per-client throughput, 1-3 clients",
    "fig18": "multi-client uplink loss",
    "fig20": "driving-pattern cases",
    "fig21": "selection-window sweep",
    "tab03": "block-ACK collision rate",
    "fig22": "time-hysteresis sweep",
    "fig23": "dense vs sparse segments",
    "tab04": "video rebuffer ratio",
    "fig24": "conferencing fps CDF",
    "tab05": "web page load time",
    "ablations": "WGTT design-choice ablations",
    "ext_density": "throughput vs AP deployment density",
    "ext_faults": "chaos sweep: crash rate × partition duration",
    "ext_ha": "controller-kill sweep under warm-standby HA",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wi-Fi Goes to Town (SIGCOMM 2017) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    drive = sub.add_parser("drive", help="run one drive-by and summarize")
    drive.add_argument("--scheme", choices=("wgtt", "baseline"), default="wgtt")
    drive.add_argument("--speed", type=float, default=15.0, metavar="MPH")
    drive.add_argument(
        "--protocol", choices=("tcp", "udp"), default="tcp"
    )
    drive.add_argument("--seconds", type=float, default=None)
    drive.add_argument("--seed", type=int, default=3)
    drive.add_argument("--udp-rate-mbps", type=float, default=50.0)

    experiment = sub.add_parser(
        "experiment", help="run a paper table/figure driver"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--seed", type=int, default=3)
    experiment.add_argument(
        "--full", action="store_true",
        help="full sweep instead of the quick one",
    )
    experiment.add_argument(
        "--json", action="store_true", help="emit raw JSON instead of tables"
    )
    experiment.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for grid fan-out (0 = all cores); "
        "results are byte-identical to --jobs 1 for the same seeds",
    )

    sub.add_parser("list", help="list available experiment drivers")
    return parser


def cmd_drive(args) -> int:
    from repro.apps.bulk import run_bulk_download
    from repro.scenarios.testbed import TestbedConfig

    config = TestbedConfig(
        seed=args.seed, scheme=args.scheme, client_speeds_mph=[args.speed]
    )
    result = run_bulk_download(
        config,
        protocol=args.protocol,
        duration_s=args.seconds,
        udp_rate_bps=args.udp_rate_mbps * 1e6,
    )
    print(
        f"{args.scheme} / {args.protocol.upper()} at {args.speed:g} mph "
        f"for {result.duration_s:.1f} s"
    )
    print(f"  throughput : {result.throughput_mbps:.2f} Mbit/s")
    print(f"  switches   : {result.switch_count}")
    if args.protocol == "tcp":
        print(f"  timeouts   : {result.tcp_timeouts}")
    series = " ".join(f"{g:.1f}" for g in result.goodput_series_mbps)
    print(f"  goodput/s  : {series}")
    return 0


def _run_experiment(experiment_id: str, seed: int, quick: bool, jobs: int = 1):
    import importlib

    module = importlib.import_module(f"repro.experiments.{experiment_id}")
    run = module.run
    import inspect

    from repro.experiments.runner import available_jobs, set_default_jobs

    if jobs == 0:
        jobs = available_jobs()
    set_default_jobs(jobs)

    kwargs = {}
    signature = inspect.signature(run)
    if "seed" in signature.parameters:
        kwargs["seed"] = seed
    if "quick" in signature.parameters:
        kwargs["quick"] = quick
    if "jobs" in signature.parameters:
        kwargs["jobs"] = jobs
    return run(**kwargs)


def cmd_experiment(args) -> int:
    result = _run_experiment(
        args.id, args.seed, quick=not args.full, jobs=getattr(args, "jobs", 1)
    )
    if args.json:
        print(json.dumps(result, default=_json_default, indent=2))
        return 0
    if isinstance(result, dict) and "rows" in result:
        rows = result["rows"]
        columns = list(rows[0].keys()) if rows else []
        print(format_table(rows, columns))
    else:
        print(json.dumps(_summarize(result), default=_json_default, indent=2))
    return 0


def _summarize(value, depth=0):
    """Keep CLI output readable: elide long series at the top levels."""
    if isinstance(value, dict):
        return {k: _summarize(v, depth + 1) for k, v in value.items()}
    if isinstance(value, (list, tuple)) and len(value) > 12:
        return f"<{len(value)} values>"
    return value


def _json_default(value):
    try:
        import numpy as np

        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return value.tolist()
    except ImportError:  # pragma: no cover
        pass
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        print(f"{key.ljust(width)}  {EXPERIMENTS[key]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "drive": cmd_drive,
        "experiment": cmd_experiment,
        "list": cmd_list,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `wgtt-repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
