"""``python -m repro.analysis`` — the static-analysis gate.

Runs every registered pass over the given paths (default: ``src``)
and exits nonzero on any finding.  CI runs ``--json src/`` as a hard
gate; humans get the text report with fix hints.

Examples::

    python -m repro.analysis src/
    python -m repro.analysis --json src/ > findings.json
    python -m repro.analysis --rule DET001 --rule DET002 src/repro/mac
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import (
    SUPPRESSION_RULES,
    AnalysisPass,
    run_passes,
)
from repro.analysis.findings import render_json_payload, render_text
from repro.analysis.passes import (
    CheckpointCoveragePass,
    DeterminismPass,
    FlagManifestPass,
    MetricNamePass,
    TraceKindPass,
)
from repro.analysis.project import load_project

__all__ = ["build_passes", "main", "rule_catalog"]


def build_passes(manifest: Optional[Path] = None) -> List[AnalysisPass]:
    """The default pass set, in report-grouping order."""
    return [
        DeterminismPass(),
        FlagManifestPass(manifest_path=manifest),
        TraceKindPass(),
        CheckpointCoveragePass(),
        MetricNamePass(),
    ]


def rule_catalog() -> Dict[str, str]:
    catalog: Dict[str, str] = {
        "SYN001": "file does not parse",
    }
    for analysis_pass in build_passes():
        catalog.update(analysis_pass.rules)
    catalog.update(SUPPRESSION_RULES)
    return catalog


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repo-specific static analysis: determinism lint, config-"
            "gate audit, trace-kind cross-check, checkpoint coverage, "
            "metrics-name lint"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the findings as a deterministic JSON document",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help=(
            "run only the named rule(s); repeatable.  Disables the "
            "SUP001/SUP002 suppression audit."
        ),
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        default=None,
        help="flags manifest path (default: analysis/flags.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(rule_catalog().items()):
            print(f"{rule}  {description}")
        return 0

    known = rule_catalog()
    if args.rule:
        unknown = sorted(set(args.rule) - set(known))
        if unknown:
            print(
                f"unknown rule(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    project = load_project(paths)
    findings = run_passes(
        project, build_passes(args.manifest), rule_filter=args.rule
    )

    if args.json:
        print(
            json.dumps(
                render_json_payload(findings),
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    elif findings:
        print(render_text(findings))
    if findings:
        if not args.json:
            print(
                f"\n{len(findings)} finding(s).  Suppress a deliberate "
                "exception with `# noqa-repro: RULE — reason`.",
                file=sys.stderr,
            )
        return 1
    if not args.json:
        print(f"OK: {len(project.files)} files clean")
    return 0
