"""Small AST helpers shared by the passes."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "dotted_name",
    "str_literal",
    "fstring_literal_prefix",
    "walk_functions",
    "end_line",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def str_literal(node: Optional[ast.AST]) -> Optional[str]:
    """The value of a plain string constant, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def fstring_literal_prefix(node: ast.AST) -> Optional[str]:
    """The leading literal text of an f-string, else None.

    ``f"fading/{ap}/{client}"`` → ``"fading/"``; an f-string that
    *starts* with an interpolation has no literal prefix and returns
    the empty string (callers treat that as fully dynamic).
    """
    if not isinstance(node, ast.JoinedStr) or not node.values:
        return None
    first = node.values[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return ""


def walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, str]]:
    """Every (async) function definition with its qualified-ish name."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualified = f"{prefix}{child.name}"
                yield child, qualified
                yield from visit(child, f"{qualified}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def end_line(node: ast.AST) -> int:
    return getattr(node, "end_lineno", None) or getattr(node, "lineno", 0)
