"""Pass orchestration: run passes, apply suppressions, audit them.

A pass is any object with a ``name``, a ``rules`` mapping (rule id →
one-line description, the ``--list-rules`` catalog), and a
``run(project) -> List[Finding]`` method.  The engine owns everything
passes shouldn't re-implement: rule filtering, inline-suppression
matching, and the two suppression-audit rules —

* **SUP001** — a ``# noqa-repro`` with no reason.  Suppressions are
  the documented exceptions to the determinism/protocol guarantees;
  an undocumented exception is indistinguishable from a smuggled bug.
* **SUP002** — a suppression that matched no finding.  Dead markers
  make the next reader believe a rule fires where it doesn't, and
  they silently widen if the code under them changes.

Suppression audits only run when no ``--rule`` filter is active: with
a filtered rule set, a marker for an unfiltered rule would look unused.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, parse_error_findings

__all__ = ["AnalysisPass", "run_passes"]


class AnalysisPass:
    """Base class for passes (subclassing is convention, not duck law)."""

    name: str = "pass"
    rules: Dict[str, str] = {}

    def run(self, project: Project) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


SUPPRESSION_RULES: Dict[str, str] = {
    "SUP001": "inline suppression without a reason",
    "SUP002": "inline suppression that matched no finding",
}


def _apply_suppressions(
    project: Project, findings: List[Finding]
) -> List[Finding]:
    kept: List[Finding] = []
    by_path = {file.display_path: file for file in project.files}
    for finding in findings:
        file = by_path.get(finding.path)
        if file is None:
            kept.append(finding)
            continue
        absorbed = False
        for suppression in file.suppressions_covering(finding.span()):
            if finding.rule in suppression.rules:
                suppression.used = True
                absorbed = True
        if not absorbed:
            kept.append(finding)
    return kept


def _audit_suppressions(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for file in project.files:
        for suppression in file.suppressions:
            if not suppression.reason:
                findings.append(
                    Finding(
                        path=file.display_path,
                        line=suppression.line,
                        col=0,
                        rule="SUP001",
                        severity=Severity.ERROR,
                        message=(
                            "suppression without a reason: "
                            "# noqa-repro must say why"
                        ),
                        hint=(
                            "write `# noqa-repro: RULE — why this site "
                            "is a deliberate exception`"
                        ),
                    )
                )
            if suppression.rules and not suppression.used:
                findings.append(
                    Finding(
                        path=file.display_path,
                        line=suppression.line,
                        col=0,
                        rule="SUP002",
                        severity=Severity.WARNING,
                        message=(
                            "unused suppression for "
                            f"{', '.join(suppression.rules)}: no finding "
                            "fires here"
                        ),
                        hint="delete the stale # noqa-repro marker",
                    )
                )
    return findings


def run_passes(
    project: Project,
    passes: Sequence[AnalysisPass],
    rule_filter: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run ``passes`` over ``project`` and return surviving findings.

    ``rule_filter`` keeps only the named rule ids (passes whose whole
    catalog is filtered out are skipped entirely); it also disables the
    SUP001/SUP002 audit, which is only meaningful for full runs.
    """
    wanted = set(rule_filter) if rule_filter else None
    raw: List[Finding] = list(parse_error_findings(project))
    for analysis_pass in passes:
        if wanted is not None and not (wanted & set(analysis_pass.rules)):
            continue
        raw.extend(analysis_pass.run(project))
    if wanted is not None:
        raw = [f for f in raw if f.rule in wanted or f.rule == "SYN001"]
    findings = _apply_suppressions(project, raw)
    if wanted is None:
        findings.extend(_audit_suppressions(project))
    return sorted(findings)
