"""Repo-specific static analysis (``python -m repro.analysis``).

An AST-based lint engine (stdlib only) whose passes encode this
reproduction's *actual* invariants instead of generic style:

* :mod:`~repro.analysis.passes.determinism` — seed discipline, wall-
  clock bans, sorted iteration on export paths (DET001–DET005);
* :mod:`~repro.analysis.passes.flags` — feature-flag defaults vs the
  committed ``analysis/flags.toml`` manifest (CFG001–CFG003);
* :mod:`~repro.analysis.passes.tracekinds` — trace emit sites vs the
  ``repro.obs.schema`` catalog, both directions (TRC001–TRC003);
* :mod:`~repro.analysis.passes.checkpoint` — controller volatile state
  vs ``repro.ha.checkpoint`` coverage (CKP001–CKP003);
* :mod:`~repro.analysis.passes.metricnames` — canonical metric keys,
  one instrument type per name (MET001–MET002).

Deliberate exceptions are inline, explained, and audited:
``# noqa-repro: RULE — reason`` (SUP001 fires on a missing reason,
SUP002 on a suppression nothing needs).  See docs/static-analysis.md.
"""

from repro.analysis.engine import AnalysisPass, run_passes
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, load_project

__all__ = [
    "AnalysisPass",
    "Finding",
    "Project",
    "Severity",
    "load_project",
    "run_passes",
]
