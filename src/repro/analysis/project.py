"""Source loading, AST parsing, and the inline-suppression protocol.

Suppressions are the escape hatch every lint needs, made auditable:

    self._loss_rng = wall_entropy()  # noqa-repro: DET001 — calibration-only path, never feeds the event loop

The format is ``# noqa-repro: RULE[,RULE...] — reason``.  The reason is
*mandatory*: a suppression with no reason is itself a finding (SUP001),
and a suppression that matched no finding on its line is rot and also a
finding (SUP002).  The em dash is the canonical separator; ``--`` and
`` - `` are accepted so plain-ASCII editors aren't punished.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity

__all__ = ["Suppression", "SourceFile", "Project", "load_project"]

#: Matches a suppression marker: the introducer, then
#: ``RULE[,RULE...] — reason`` (reason optional at parse time; its
#: absence is the SUP001 finding).
_SUPPRESS_RE = re.compile(
    r"#\s*noqa-repro:\s*"
    r"(?P<rules>[A-Z][A-Z0-9]*\d{3}(?:\s*,\s*[A-Z][A-Z0-9]*\d{3})*)"
    r"(?:\s*(?:—|–|--|-)\s*(?P<reason>.*\S))?"
)


@dataclass
class Suppression:
    """One inline ``# noqa-repro`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: Set when this suppression absorbed at least one finding.
    used: bool = False


@dataclass
class SourceFile:
    """One parsed source file plus its suppression table."""

    path: Path
    #: Path as reported in findings (relative to the invocation root
    #: when possible, so reports are machine-portable).
    display_path: str
    text: str
    lines: List[str]
    tree: Optional[ast.AST]
    parse_error: Optional[str]
    suppressions: List[Suppression] = field(default_factory=list)

    #: Dotted module name when the file sits under a ``src`` root or an
    #: importable package tree; best-effort elsewhere.
    module: str = ""

    def suppressions_covering(self, span: Iterable[int]) -> List[Suppression]:
        span_set = set(span)
        return [s for s in self.suppressions if s.line in span_set]


@dataclass
class Project:
    """Everything the passes see: the parsed files plus shared config."""

    files: List[SourceFile]
    #: Repository root the run was invoked from (manifest lookups).
    root: Path

    def by_suffix(self, suffix: str) -> Optional[SourceFile]:
        """The unique file whose posix path ends with ``suffix``."""
        matches = [
            f for f in self.files if f.path.as_posix().endswith(suffix)
        ]
        return matches[0] if len(matches) == 1 else None


def _module_name(path: Path) -> str:
    """Dotted module for ``path``: the part after the nearest ``src``
    ancestor, else after the outermost package directory."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "src":
            return ".".join(parts[index + 1 :])
    # Fall back: walk up while __init__.py exists.
    package_start = len(parts) - 1
    probe = path.parent
    while (probe / "__init__.py").exists() and package_start > 0:
        package_start -= 1
        probe = probe.parent
    return ".".join(parts[package_start:])


def _iter_comments(text: str, lines: List[str]) -> List[Tuple[int, str]]:
    """(line, comment_text) for every real comment token.

    Tokenizing (rather than regex over raw lines) keeps markers that
    merely appear inside string literals or docstrings — e.g. this
    engine's own documentation of the suppression format — from being
    parsed as suppressions.  Files that fail to tokenize (they already
    carry a SYN001 finding) fall back to a line scan.
    """
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for line_no, line in enumerate(lines, start=1):
            if "#" in line:
                comments.append((line_no, line[line.index("#") :]))
    return comments


def _parse_suppressions(text: str, lines: List[str]) -> List[Suppression]:
    found: List[Suppression] = []
    for line_no, comment in _iter_comments(text, lines):
        if "noqa-repro" not in comment:
            continue
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            # A malformed marker still *intends* to suppress; surface
            # it as an unexplained suppression rather than ignoring it.
            found.append(Suppression(line=line_no, rules=(), reason=""))
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",")
        )
        reason = (match.group("reason") or "").strip()
        found.append(Suppression(line=line_no, rules=rules, reason=reason))
    return found


def load_source_file(path: Path, display_path: str) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    tree: Optional[ast.AST] = None
    parse_error: Optional[str] = None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        parse_error = f"{error.msg} (line {error.lineno})"
    return SourceFile(
        path=path,
        display_path=display_path,
        text=text,
        lines=lines,
        tree=tree,
        parse_error=parse_error,
        suppressions=_parse_suppressions(text, lines),
        module=_module_name(path),
    )


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            collected.append(path)
    # De-duplicate while preserving the sorted-within-path order.
    seen: Dict[Path, None] = {}
    for path in collected:
        seen.setdefault(path.resolve(), None)
    return list(seen)


def load_project(paths: Iterable[Path], root: Optional[Path] = None) -> Project:
    root = (root or Path.cwd()).resolve()
    files: List[SourceFile] = []
    for path in iter_python_files(paths):
        try:
            display = path.relative_to(root).as_posix()
        except ValueError:
            display = path.as_posix()
        files.append(load_source_file(path, display))
    return Project(files=files, root=root)


def parse_error_findings(project: Project) -> List[Finding]:
    """Unparseable files are findings, not crashes: the rest of the
    tree still gets analyzed."""
    findings: List[Finding] = []
    for file in project.files:
        if file.parse_error is not None:
            findings.append(
                Finding(
                    path=file.display_path,
                    line=1,
                    col=0,
                    rule="SYN001",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {file.parse_error}",
                    hint="fix the syntax error; analysis skipped this file",
                )
            )
    return findings
