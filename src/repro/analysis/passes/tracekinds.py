"""Trace-kind cross-check: emit sites vs the ``repro.obs.schema`` catalog.

Every subsystem emits typed events/spans through ``sim.obs.trace``
(PR 4), and downstream consumers — the invariant checker's
subscriptions, the Chrome exporter's lane mapping, cross-run trace
diffing — key on the literal event *names*.  A name that exists only
at its emit site is invisible to the schema validator; a name that
exists only in the schema is a consumer contract nothing fulfills.
This pass harvests every ``tracer.emit(sub, name, ...)`` /
``tracer.begin(sub, name, ...)`` literal across the scanned tree and
cross-checks the set against :data:`repro.obs.schema.TRACE_NAMES` in
both directions.

========  ============================================================
rule      fires when
========  ============================================================
TRC001    an emit site uses a (sub, name) the schema catalog lacks
TRC002    a catalog entry is emitted nowhere in the scanned tree
TRC003    an emit site's sub or name is not a string literal
========  ============================================================

TRC002 only fires when the scan included the known emitting packages
(it is suppressed for partial scans, e.g. ``--rule TRC001 somefile``),
so pointing the tool at one file never reports the whole catalog as
dead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import dotted_name, end_line, str_literal
from repro.analysis.engine import AnalysisPass
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

__all__ = ["TraceKindPass", "harvest_emit_sites"]

#: Paths that contain emit sites; TRC002 (never-emitted) only makes
#: sense when the scan covered them.
_FULL_SCAN_MARKER = "repro/core/controller.py"


def _literal_choices(node: ast.AST) -> Optional[List[str]]:
    """All values a literal-or-literal-conditional expression can take.

    Accepts plain string constants and ``"a" if cond else "b"`` shapes
    (both arms literal) — the coordinator names its span "failover" or
    "switch" this way, and both names are statically known.
    """
    literal = str_literal(node)
    if literal is not None:
        return [literal]
    if isinstance(node, ast.IfExp):
        body = _literal_choices(node.body)
        orelse = _literal_choices(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


def _is_emit_receiver(receiver: Optional[str]) -> bool:
    if receiver is None:
        return False
    return (
        receiver == "tracer"
        or receiver == "trace"
        or receiver.endswith(".trace")
        or receiver.endswith(".tracer")
    )


def harvest_emit_sites(
    project: Project,
) -> Tuple[Dict[Tuple[str, str], List[Tuple[str, int]]], List[Finding]]:
    """All literal (sub, name) pairs at emit sites, plus TRC003s."""
    sites: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    dynamic: List[Finding] = []
    for file in project.files:
        if file.tree is None:
            continue
        # The tracer implementation itself calls neither; skip the obs
        # package so the schema/validator modules can mention names.
        if "repro/obs/" in file.path.as_posix():
            continue
        if "repro/analysis/" in file.path.as_posix():
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("emit", "begin"):
                continue
            if not _is_emit_receiver(dotted_name(func.value)):
                continue
            if len(node.args) < 2:
                continue
            subs = _literal_choices(node.args[0])
            names = _literal_choices(node.args[1])
            if subs is None or names is None:
                dynamic.append(
                    Finding(
                        path=file.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="TRC003",
                        severity=Severity.ERROR,
                        message=(
                            "trace emit with a non-literal sub/name: "
                            "the schema cross-check cannot see it"
                        ),
                        hint="pass the subsystem and event name as string literals",
                        end_line=end_line(node),
                    )
                )
                continue
            for sub in subs:
                for name in names:
                    sites.setdefault((sub, name), []).append(
                        (file.display_path, node.lineno)
                    )
    return sites, dynamic


class TraceKindPass(AnalysisPass):
    name = "trace-kinds"
    rules = {
        "TRC001": "emitted trace (sub, name) missing from the schema catalog",
        "TRC002": "schema catalog trace name emitted nowhere",
        "TRC003": "trace emit site with non-literal sub/name",
    }

    def __init__(
        self, catalog: Optional[Mapping[str, Sequence[str]]] = None
    ):
        #: name -> allowed subsystems; None loads the live schema.
        self._catalog = catalog

    def _load_catalog(self) -> Mapping[str, Sequence[str]]:
        if self._catalog is not None:
            return self._catalog
        from repro.obs.schema import TRACE_NAMES

        return TRACE_NAMES

    def run(self, project: Project) -> List[Finding]:
        catalog = self._load_catalog()
        sites, findings = harvest_emit_sites(project)

        emitted_names: Set[str] = set()
        for (sub, name), locations in sorted(sites.items()):
            emitted_names.add(name)
            allowed = catalog.get(name)
            path, line = sorted(locations)[0]
            if allowed is None:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="TRC001",
                        severity=Severity.ERROR,
                        message=(
                            f"trace name {name!r} (sub {sub!r}) is not in "
                            "repro.obs.schema.TRACE_NAMES"
                        ),
                        hint=(
                            "add the name (with its subsystem) to the "
                            "schema catalog in the same change"
                        ),
                    )
                )
            elif sub not in allowed:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="TRC001",
                        severity=Severity.ERROR,
                        message=(
                            f"trace name {name!r} emitted by sub {sub!r}, "
                            f"but the schema allows only {sorted(allowed)}"
                        ),
                        hint=(
                            "extend the name's subsystem list in "
                            "repro.obs.schema.TRACE_NAMES if the new "
                            "emitter is intentional"
                        ),
                    )
                )

        full_scan = any(
            file.path.as_posix().endswith(_FULL_SCAN_MARKER)
            for file in project.files
        )
        if full_scan:
            for name in sorted(set(catalog) - emitted_names):
                findings.append(
                    Finding(
                        path="src/repro/obs/schema.py",
                        line=1,
                        col=0,
                        rule="TRC002",
                        severity=Severity.ERROR,
                        message=(
                            f"schema catalog name {name!r} is emitted "
                            "nowhere in the scanned tree"
                        ),
                        hint=(
                            "remove the dead catalog entry (or restore "
                            "the missing emit site)"
                        ),
                    )
                )
        return findings
