"""Config-gate auditor: feature-flag defaults vs the committed manifest.

Every feature grown onto this reproduction ships config-gated **off**
by default, and the off-state is verified bit-identical to the prior
revision (CHANGES.md records this per PR).  That guarantee dies the day
a new flag quietly defaults *on*, or an existing default flips in a
refactor.  This pass extracts every ``bool``-typed field of every
``*Config`` dataclass in the scanned tree and checks it against the
committed manifest (``analysis/flags.toml``): a flag the manifest has
never reviewed, a manifest entry whose flag is gone, or a default that
silently changed each fail the run.

========  ============================================================
rule      fires when
========  ============================================================
CFG001    a config flag is missing from the manifest (new/unreviewed)
CFG002    a manifest entry has no matching flag in code (stale), or
          the manifest itself is missing/unreadable
CFG003    a flag's default differs from the manifest's recorded value
========  ============================================================

The manifest is the review record: adding a flag means adding its
(reviewed) default here in the same diff, which is exactly the CI
surface where a default-on gate gets questioned.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import AnalysisPass
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

__all__ = ["FlagManifestPass", "collect_flags", "load_flags_manifest"]

#: Default manifest location, relative to the invocation root.
DEFAULT_MANIFEST = Path("analysis/flags.toml")

_TOML_LINE = re.compile(
    r"""^\s*(?:"(?P<quoted>[^"]+)"|(?P<bare>[\w.\-]+))\s*=\s*
        (?P<value>true|false)\s*(?:\#.*)?$""",
    re.VERBOSE,
)
_TOML_SECTION = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*(?:#.*)?$")


def load_flags_manifest(path: Path) -> Dict[str, bool]:
    """Read the ``[flags]`` table: flag key → reviewed default.

    Uses :mod:`tomllib` when available (3.11+); otherwise a minimal
    line parser covering the subset this manifest uses (quoted keys,
    boolean values) — the repo adds no third-party TOML dependency.
    """
    try:
        import tomllib
    except ImportError:  # Python <= 3.10
        tomllib = None  # type: ignore[assignment]
    if tomllib is not None:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
        flags = data.get("flags", {})
        return {str(key): bool(value) for key, value in flags.items()}
    flags: Dict[str, bool] = {}
    section = ""
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        section_match = _TOML_SECTION.match(line)
        if section_match:
            section = section_match.group("name").strip()
            continue
        if section != "flags":
            continue
        match = _TOML_LINE.match(line)
        if match:
            key = match.group("quoted") or match.group("bare")
            flags[key] = match.group("value") == "true"
    return flags


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


def collect_flags(
    project: Project,
) -> Dict[str, Tuple[bool, str, int]]:
    """Every bool field of every ``*Config`` dataclass in the project.

    Returns ``{module.Class.field: (default, display_path, line)}``.
    """
    flags: Dict[str, Tuple[bool, str, int]] = {}
    for file in project.files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config"):
                continue
            if not _is_dataclass_decorated(node):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                field_name = statement.target.id
                if field_name.startswith("_"):
                    continue
                annotation = statement.annotation
                if not (
                    isinstance(annotation, ast.Name)
                    and annotation.id == "bool"
                ):
                    continue
                default = statement.value
                if not (
                    isinstance(default, ast.Constant)
                    and isinstance(default.value, bool)
                ):
                    continue
                key = f"{file.module}.{node.name}.{field_name}"
                flags[key] = (
                    default.value,
                    file.display_path,
                    statement.lineno,
                )
    return flags


class FlagManifestPass(AnalysisPass):
    name = "flags"
    rules = {
        "CFG001": "config flag missing from the flags manifest",
        "CFG002": "stale manifest entry (or missing manifest)",
        "CFG003": "config flag default differs from the manifest",
    }

    def __init__(self, manifest_path: Optional[Path] = None):
        self.manifest_path = manifest_path

    def run(self, project: Project) -> List[Finding]:
        manifest_path = self.manifest_path or (project.root / DEFAULT_MANIFEST)
        try:
            manifest_display = manifest_path.relative_to(project.root).as_posix()
        except ValueError:
            manifest_display = manifest_path.as_posix()
        flags = collect_flags(project)
        if not manifest_path.exists():
            if not flags:
                return []  # nothing to audit in this scan
            return [
                Finding(
                    path=manifest_display,
                    line=1,
                    col=0,
                    rule="CFG002",
                    severity=Severity.ERROR,
                    message="flags manifest not found",
                    hint=(
                        "commit analysis/flags.toml with a [flags] table "
                        "of module.Class.field = default entries"
                    ),
                )
            ]
        manifest = load_flags_manifest(manifest_path)

        findings: List[Finding] = []
        for key in sorted(set(flags) - set(manifest)):
            default, path, line = flags[key]
            on_warning = (
                " — and it defaults ON, which breaks the gated-off-by-"
                "default contract unless explicitly reviewed"
                if default
                else ""
            )
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule="CFG001",
                    severity=Severity.ERROR,
                    message=(
                        f"flag {key} (default {default}) is not in the "
                        f"manifest{on_warning}"
                    ),
                    hint=(
                        f'add `"{key}" = {str(default).lower()}` to '
                        f"{manifest_display} in the same change"
                    ),
                )
            )
        # Manifest-side staleness only makes sense when the scan found
        # flags at all: pointing the tool at one non-config file must
        # not report the whole manifest as stale (CI's full src/ scan
        # always includes the config modules).
        for key in sorted(set(manifest) - set(flags)) if flags else []:
            findings.append(
                Finding(
                    path=manifest_display,
                    line=1,
                    col=0,
                    rule="CFG002",
                    severity=Severity.ERROR,
                    message=(
                        f"manifest entry {key} matches no config flag in "
                        "the scanned tree"
                    ),
                    hint="remove the stale entry (or fix the rename)",
                )
            )
        for key in sorted(set(manifest) & set(flags)):
            default, path, line = flags[key]
            if manifest[key] != default:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="CFG003",
                        severity=Severity.ERROR,
                        message=(
                            f"flag {key} defaults to {default} but the "
                            f"manifest records {manifest[key]} — a default "
                            "silently flipped"
                        ),
                        hint=(
                            "if the flip is intentional, update "
                            f"{manifest_display} in the same change"
                        ),
                    )
                )
        return findings
