"""Determinism lint: seed discipline, wall-clock bans, ordered exports.

Everything this reproduction promises — byte-identical replays per
seed, drive-digest comparisons across PRs, sha256 fingerprint chains in
the soak harness — rests on two disciplines the interpreter does not
enforce:

1. **all randomness flows through** :class:`repro.sim.rng.RngRegistry`
   (one root seed, one named stream per consumer), and
2. **nothing that reaches an export** (trace JSONL, checkpoints,
   metrics snapshots) **iterates an unordered container**.

These rules machine-check both.

========  ============================================================
rule      fires when
========  ============================================================
DET001    ``random``/``time``/``datetime`` imported, or a wall-clock /
          calendar call (``time.time()``, ``datetime.now()``, ...)
DET002    a direct ``np.random.*`` / ``numpy.random.*`` call outside
          ``repro/sim/rng.py`` (the one blessed construction site)
DET003    ``RngRegistry.stream()/spawn()`` with a non-literal label
          (a bare variable defeats grep-ability and risks collisions;
          f-strings with a literal prefix are the entity-keyed idiom)
DET004    the same literal stream label used at two different call
          sites (two consumers would share — and perturb — one stream)
DET005    iteration over a ``set`` in an export-path or trace-emitting
          function, or over ``dict.values()/.keys()`` in an
          export-path function, without ``sorted(...)``
========  ============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    dotted_name,
    end_line,
    fstring_literal_prefix,
    str_literal,
    walk_functions,
)
from repro.analysis.engine import AnalysisPass
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

__all__ = ["DeterminismPass"]

#: The one module allowed to touch numpy's generator constructors.
RNG_MODULE_SUFFIX = "repro/sim/rng.py"

#: Modules whose import is banned outright (DET001).
_BANNED_MODULES = ("random", "time", "datetime")

#: Wall-clock / calendar calls (DET001) by dotted suffix.
_BANNED_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

_NP_RANDOM_CALL = re.compile(r"^(np|numpy)\.random\.\w+$")

#: Functions whose *output ordering is the product*: serializers,
#: snapshots, collectors, checkpoint plumbing.  DET005 holds these to
#: sorted iteration over sets and dict views alike.
_EXPORT_NAME_RE = re.compile(
    r"^_?(snapshot\w*|to_state|to_record|to_json|to_bytes|jsonl_lines"
    r"|fingerprint\w*|digest|describe|collect\w*|export\w*"
    r"|checkpoint\w*|restore\w*|serialize\w*)$"
)

#: Reducers whose result is order-insensitive: a generator feeding one
#: of these may iterate an unordered container without harm.
_ORDER_INSENSITIVE_REDUCERS = frozenset(
    {"sum", "max", "min", "any", "all", "len", "sorted", "set", "frozenset"}
)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_trace_emit_call(node: ast.Call) -> bool:
    """``tracer.emit(...)`` / ``<...>.trace.begin(...)`` shapes."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in ("emit", "begin"):
        return False
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    return receiver == "tracer" or receiver.endswith(".trace") or receiver == "trace"


def _is_set_expr(node: ast.AST, local_sets: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    return False


class DeterminismPass(AnalysisPass):
    name = "determinism"
    rules = {
        "DET001": "banned entropy/clock source (random, time, datetime)",
        "DET002": "direct np.random call outside repro/sim/rng.py",
        "DET003": "non-literal RngRegistry stream/spawn label",
        "DET004": "duplicate literal rng stream label across call sites",
        "DET005": "unsorted set/dict-view iteration on an export path",
    }

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        #: (method, label) -> [(display_path, line)]
        literal_labels: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
        for file in project.files:
            if file.tree is None:
                continue
            findings.extend(self._check_imports_and_calls(file))
            findings.extend(self._check_stream_labels(file, literal_labels))
            findings.extend(self._check_export_iteration(file))
        findings.extend(self._check_duplicate_labels(literal_labels))
        return findings

    # -- DET001 / DET002 ----------------------------------------------

    def _check_imports_and_calls(self, file: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        in_rng_module = file.path.as_posix().endswith(RNG_MODULE_SUFFIX)
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        findings.append(self._det001(file, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES and node.level == 0:
                    findings.append(
                        self._det001(file, node, node.module or "")
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if any(
                    name == banned or name.endswith("." + banned)
                    for banned in _BANNED_CALLS
                ):
                    findings.append(self._det001(file, node, name + "()"))
                elif _NP_RANDOM_CALL.match(name) and not in_rng_module:
                    findings.append(
                        Finding(
                            path=file.display_path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="DET002",
                            severity=Severity.ERROR,
                            message=(
                                f"direct {name}() call: numpy generators "
                                "may only be constructed in repro/sim/rng.py"
                            ),
                            hint=(
                                "take an RngRegistry and call "
                                '.stream("<label>"), or use '
                                "repro.sim.rng.seeded_generator for a "
                                "fixed-seed stream"
                            ),
                            end_line=end_line(node),
                        )
                    )
        return findings

    def _det001(self, file: SourceFile, node: ast.AST, what: str) -> Finding:
        return Finding(
            path=file.display_path,
            line=node.lineno,
            col=node.col_offset,
            rule="DET001",
            severity=Severity.ERROR,
            message=(
                f"banned entropy/clock source {what!r}: simulation code "
                "must be a pure function of (seed, config)"
            ),
            hint=(
                "draw randomness from RngRegistry.stream(); timestamps "
                "come from the simulation clock (sim.now)"
            ),
            end_line=end_line(node),
        )

    # -- DET003 / DET004 ----------------------------------------------

    def _check_stream_labels(
        self,
        file: SourceFile,
        literal_labels: Dict[Tuple[str, str], List[Tuple[str, int]]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("stream", "spawn"):
                continue
            label_node: Optional[ast.AST] = None
            if node.args:
                label_node = node.args[0]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "label":
                        label_node = keyword.value
            if label_node is None:
                continue
            literal = str_literal(label_node)
            if literal is not None:
                key = (func.attr, literal)
                literal_labels.setdefault(key, []).append(
                    (file.display_path, node.lineno)
                )
                continue
            prefix = fstring_literal_prefix(label_node)
            if prefix:
                # Entity-keyed stream families ("fading/{ap}/{client}")
                # are the supported idiom: the literal prefix keeps the
                # family greppable and namespaced.
                continue
            findings.append(
                Finding(
                    path=file.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="DET003",
                    severity=Severity.ERROR,
                    message=(
                        f"rng .{func.attr}() label is not a string "
                        "literal (or an f-string with a literal prefix)"
                    ),
                    hint=(
                        "pass the label literally at the call site so "
                        "stream ownership stays greppable and collision-"
                        "checkable"
                    ),
                    end_line=end_line(node),
                )
            )
        return findings

    def _check_duplicate_labels(
        self,
        literal_labels: Dict[Tuple[str, str], List[Tuple[str, int]]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for (method, label), sites in sorted(literal_labels.items()):
            distinct = sorted(set(sites))
            if len(distinct) < 2:
                continue
            first = distinct[0]
            for path, line in distinct[1:]:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="DET004",
                        severity=Severity.ERROR,
                        message=(
                            f"duplicate rng {method} label {label!r} "
                            f"(first used at {first[0]}:{first[1]}): two "
                            "call sites would share one stream and "
                            "perturb each other's draws"
                        ),
                        hint="give each consumer its own label",
                    )
                )
        return findings

    # -- DET005 --------------------------------------------------------

    def _check_export_iteration(self, file: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        assert file.tree is not None
        for function, qualified in walk_functions(file.tree):
            short_name = qualified.rsplit(".", 1)[-1]
            is_export = bool(_EXPORT_NAME_RE.match(short_name))
            emits_trace = any(
                isinstance(node, ast.Call) and _is_trace_emit_call(node)
                for node in ast.walk(function)
            )
            if not (is_export or emits_trace):
                continue
            findings.extend(
                self._check_function_iteration(
                    file, function, qualified, dict_views=is_export
                )
            )
        return findings

    def _check_function_iteration(
        self,
        file: SourceFile,
        function: ast.AST,
        qualified: str,
        dict_views: bool,
    ) -> List[Finding]:
        local_sets: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and _is_set_expr(
                node.value, local_sets
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_sets.add(target.id)

        # Generator expressions feeding sum()/max()/... are order-safe.
        exempt: Set[int] = set()
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE_REDUCERS
            ):
                for arg in node.args:
                    if isinstance(arg, _COMPREHENSIONS):
                        exempt.add(id(arg))

        iteration_sites: List[Tuple[ast.AST, ast.AST]] = []
        for node in ast.walk(function):
            if isinstance(node, ast.For):
                iteration_sites.append((node, node.iter))
            elif isinstance(node, _COMPREHENSIONS) and id(node) not in exempt:
                for generator in node.generators:
                    iteration_sites.append((node, generator.iter))

        findings: List[Finding] = []
        for site, iterable in iteration_sites:
            if _is_set_expr(iterable, local_sets):
                findings.append(
                    self._det005(file, site, qualified, "a set")
                )
            elif (
                dict_views
                and isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                and iterable.func.attr in ("values", "keys")
            ):
                findings.append(
                    self._det005(
                        file, site, qualified, f".{iterable.func.attr}()"
                    )
                )
        return findings

    def _det005(
        self, file: SourceFile, node: ast.AST, qualified: str, what: str
    ) -> Finding:
        return Finding(
            path=file.display_path,
            line=node.lineno,
            col=node.col_offset,
            rule="DET005",
            severity=Severity.ERROR,
            message=(
                f"{qualified} iterates {what} without sorted(): "
                "export-path ordering would depend on hash seeds or "
                "insertion history"
            ),
            hint=(
                "iterate sorted(keys) and index, or wrap the iterable "
                "in sorted(...)"
            ),
            end_line=node.lineno,
        )
