"""Checkpoint-coverage: controller volatile state vs ``repro.ha.checkpoint``.

The HA guarantee (PR 3) is that ``checkpoint_controller`` captures
**all** of the controller's volatile protocol state — a promoted
standby restores it and continues bit-identically.  That "all" decays
one field at a time: PR 7 added the admission pacer, PR 8 added the
departed-client replay guard, and nothing but reviewer memory connects
a new ``self._foo`` in ``controller.py`` to the serializer in
``ha/checkpoint.py``.  This pass closes the loop statically:

* an attribute is **volatile** when any method outside ``__init__``
  assigns it (``self.x = ...``, ``self.x[...] = ...``, ``self.x += 1``)
  or calls a mutating container method on it (``.add``, ``.append``,
  ``.pop``, ``.update``, ...);
* it is **covered** when ``checkpoint_controller`` reads
  ``controller.<attr>``;
* deliberately non-checkpointed state carries an inline
  ``# volatile-ok: reason`` on one of its assignment lines (the reason
  is mandatory — an allowlist entry is a design decision, not a shrug).

========  ============================================================
rule      fires when
========  ============================================================
CKP001    volatile attribute neither checkpointed nor ``volatile-ok``
CKP002    checkpoint code reads an attribute the controller class
          never assigns (serializer drifted ahead of the state)
CKP003    a ``# volatile-ok`` with no reason
========  ============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import AnalysisPass
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, SourceFile

__all__ = ["CheckpointCoveragePass"]

#: Container methods that mutate their receiver.
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

_VOLATILE_OK_RE = re.compile(
    r"#\s*volatile-ok(?::\s*(?P<reason>.*\S))?"
)
_SELF_ATTR_RE = re.compile(r"self\.(\w+)")


def _self_attr_of_target(node: ast.AST) -> Optional[str]:
    """``self.x`` / ``self.x[...]`` assignment target → ``x``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class CheckpointCoveragePass(AnalysisPass):
    name = "checkpoint-coverage"
    rules = {
        "CKP001": "volatile controller state not covered by the checkpoint",
        "CKP002": "checkpoint reads an attribute the controller lacks",
        "CKP003": "volatile-ok allowlist entry without a reason",
    }

    def __init__(
        self,
        state_file_suffix: str = "repro/core/controller.py",
        state_class: str = "WgttController",
        checkpoint_file_suffix: str = "repro/ha/checkpoint.py",
        serialize_function: str = "checkpoint_controller",
        restore_function: str = "restore_controller",
        state_param: str = "controller",
    ):
        self.state_file_suffix = state_file_suffix
        self.state_class = state_class
        self.checkpoint_file_suffix = checkpoint_file_suffix
        self.serialize_function = serialize_function
        self.restore_function = restore_function
        self.state_param = state_param

    # -- state-class harvesting ---------------------------------------

    def _find_class(self, file: SourceFile) -> Optional[ast.ClassDef]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef) and node.name == self.state_class:
                return node
        return None

    def _harvest_state(
        self, file: SourceFile, class_node: ast.ClassDef
    ) -> Tuple[Set[str], Dict[str, int], Set[str]]:
        """(all assigned attrs, volatile attr → first mutation line,
        method/property names)."""
        assigned: Set[str] = set()
        volatile: Dict[str, int] = {}
        methods: Set[str] = set()

        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods.add(method.name)
            in_init = method.name == "__init__"
            for node in ast.walk(method):
                attrs_here: List[str] = []
                if isinstance(node, ast.Assign):
                    attrs_here = [
                        attr
                        for attr in map(_self_attr_of_target, node.targets)
                        if attr is not None
                    ]
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    attr = _self_attr_of_target(node.target)
                    if attr is not None:
                        attrs_here = [attr]
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                ):
                    attr = _self_attr_of_target(node.func.value)
                    if attr is not None and not in_init:
                        volatile.setdefault(attr, node.lineno)
                if attrs_here:
                    assigned.update(attrs_here)
                    if not in_init:
                        for attr in attrs_here:
                            volatile.setdefault(attr, node.lineno)
        return assigned, volatile, methods

    def _harvest_allowlist(
        self, file: SourceFile
    ) -> Tuple[Dict[str, str], List[Finding]]:
        """``# volatile-ok`` markers: attr → reason, plus CKP003s."""
        allowlist: Dict[str, str] = {}
        findings: List[Finding] = []
        for line_no, line in enumerate(file.lines, start=1):
            match = _VOLATILE_OK_RE.search(line)
            if match is None:
                continue
            attr_match = _SELF_ATTR_RE.search(line)
            reason = (match.group("reason") or "").strip()
            if not reason:
                findings.append(
                    Finding(
                        path=file.display_path,
                        line=line_no,
                        col=0,
                        rule="CKP003",
                        severity=Severity.ERROR,
                        message=(
                            "volatile-ok without a reason: deliberately "
                            "non-checkpointed state must say why the "
                            "loss across failover is acceptable"
                        ),
                        hint="write `# volatile-ok: <why>`",
                    )
                )
            if attr_match is not None:
                allowlist[attr_match.group(1)] = reason
        return allowlist, findings

    # -- checkpoint-side harvesting -----------------------------------

    def _harvest_reads(
        self, file: SourceFile
    ) -> Tuple[Set[str], Dict[str, int]]:
        """Attrs read as ``<param>.<attr>`` in the serialize function
        (coverage), and in either function (existence, with lines)."""
        assert file.tree is not None
        covered: Set[str] = set()
        referenced: Dict[str, int] = {}
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in (self.serialize_function, self.restore_function):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == self.state_param
                ):
                    referenced.setdefault(sub.attr, sub.lineno)
                    if node.name == self.serialize_function:
                        covered.add(sub.attr)
        return covered, referenced

    # -- the cross-check ----------------------------------------------

    def run(self, project: Project) -> List[Finding]:
        state_file = project.by_suffix(self.state_file_suffix)
        checkpoint_file = project.by_suffix(self.checkpoint_file_suffix)
        if (
            state_file is None
            or checkpoint_file is None
            or state_file.tree is None
            or checkpoint_file.tree is None
        ):
            # Partial scan: nothing to cross-check.
            return []
        class_node = self._find_class(state_file)
        if class_node is None:
            return []

        assigned, volatile, methods = self._harvest_state(
            state_file, class_node
        )
        allowlist, findings = self._harvest_allowlist(state_file)
        covered, referenced = self._harvest_reads(checkpoint_file)

        for attr in sorted(volatile):
            if attr in covered or attr in allowlist:
                continue
            findings.append(
                Finding(
                    path=state_file.display_path,
                    line=volatile[attr],
                    col=0,
                    rule="CKP001",
                    severity=Severity.ERROR,
                    message=(
                        f"{self.state_class}.{attr} is mutated outside "
                        "__init__ but checkpoint_controller never reads "
                        "it — this state is lost across failover"
                    ),
                    hint=(
                        "serialize it in repro/ha/checkpoint.py (and "
                        "restore it), or mark the assignment "
                        "`# volatile-ok: <why loss is acceptable>`"
                    ),
                )
            )
        for attr in sorted(referenced):
            if attr in assigned or attr in methods:
                continue
            findings.append(
                Finding(
                    path=checkpoint_file.display_path,
                    line=referenced[attr],
                    col=0,
                    rule="CKP002",
                    severity=Severity.ERROR,
                    message=(
                        f"checkpoint code reads {self.state_param}.{attr}, "
                        f"which {self.state_class} never assigns — the "
                        "serializer drifted ahead of the state class"
                    ),
                    hint="remove or rename the stale read",
                )
            )
        findings.extend(
            self._check_to_state_classes(state_file, allowlist)
        )
        return findings

    def _check_to_state_classes(
        self, file: SourceFile, allowlist: Dict[str, str]
    ) -> List[Finding]:
        """Companion check for classes serialized via ``to_state()``
        (``ClientState``, ``SwitchRecord``-style): every attribute the
        class assigns on itself must be read inside ``to_state`` —
        otherwise a restored instance silently loses it."""
        assert file.tree is not None
        findings: List[Finding] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            to_state = next(
                (
                    method
                    for method in node.body
                    if isinstance(method, ast.FunctionDef)
                    and method.name == "to_state"
                ),
                None,
            )
            if to_state is None:
                continue
            assigned, volatile, _methods = self._harvest_state(file, node)
            serialized = {
                sub.attr
                for sub in ast.walk(to_state)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            }
            # Everything __init__ sets on a to_state class is protocol
            # state (these classes exist to be checkpointed), so the
            # audit covers all assigned attrs, not just post-__init__
            # mutations.
            for attr in sorted(assigned):
                if attr in serialized or attr in allowlist:
                    continue
                line = volatile.get(attr, node.lineno)
                findings.append(
                    Finding(
                        path=file.display_path,
                        line=line,
                        col=0,
                        rule="CKP001",
                        severity=Severity.ERROR,
                        message=(
                            f"{node.name}.{attr} is never read by "
                            f"{node.name}.to_state — this field is lost "
                            "across checkpoint/restore"
                        ),
                        hint=(
                            "serialize it in to_state/from_state, or "
                            "mark the assignment `# volatile-ok: <why>`"
                        ),
                    )
                )
        return findings
