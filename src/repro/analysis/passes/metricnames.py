"""Metrics-name lint: canonical keys, one instrument type per name.

The :class:`~repro.obs.metrics.MetricsRegistry` keys every instrument
by the canonical ``name{label=value}`` string with sorted labels —
that string is the contract trace comparisons and the soak SLO guard
key on across runs.  Two ways to silently break it: a hand-written key
literal that doesn't parse canonically (snapshot diffs then miss it
forever), and one name registered as two instrument types in different
files (the registry raises at runtime — but only on the first run that
happens to hit both sites).

========  ============================================================
rule      fires when
========  ============================================================
MET001    a metric name/key literal is malformed: braces in a name
          passed to ``metric_key``/``counter``/``gauge``/``histogram``
          (labels go through kwargs), or a ``name{...}`` key literal
          whose labels are not canonical (``k=v`` pairs, sorted)
MET002    one metric name registered as two instrument types
========  ============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Tuple

from repro.analysis.astutil import end_line, str_literal
from repro.analysis.engine import AnalysisPass
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

__all__ = ["MetricNamePass"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")
#: A string literal that *looks like* a labelled metric key.
_KEYLIKE_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*\{.*\}$")
_KEY_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_.]*)\{(?P<labels>[^{}]*)\}$"
)

_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")


def _key_problem(literal: str) -> str:
    """Why a ``name{...}`` literal is not canonical; '' when it is."""
    match = _KEY_RE.match(literal)
    if match is None:
        return "does not parse as name{label=value,...}"
    label_names: List[str] = []
    for part in match.group("labels").split(","):
        if "=" not in part:
            return f"label {part!r} is not a key=value pair"
        key, value = part.split("=", 1)
        if not re.match(r"^[A-Za-z_]\w*$", key):
            return f"label name {key!r} is not an identifier"
        if not value:
            return f"label {key!r} has an empty value"
        if " " in key or value.startswith(" "):
            return f"label {part!r} carries whitespace"
        label_names.append(key)
    if label_names != sorted(label_names):
        return (
            f"labels {label_names} are not sorted — metric_key() would "
            f"produce {sorted(label_names)}"
        )
    return ""


class MetricNamePass(AnalysisPass):
    name = "metric-names"
    rules = {
        "MET001": "malformed metric name or non-canonical key literal",
        "MET002": "metric name registered as conflicting instrument types",
    }

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        #: base name -> {instrument type: (path, line)}
        types_seen: Dict[str, Dict[str, Tuple[str, int]]] = {}

        for file in project.files:
            if file.tree is None:
                continue
            if "repro/analysis/" in file.path.as_posix():
                continue
            is_metrics_impl = file.path.as_posix().endswith(
                "repro/obs/metrics.py"
            )
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Call):
                    findings.extend(
                        self._check_call(
                            file, node, types_seen, is_metrics_impl
                        )
                    )
                elif isinstance(node, ast.Constant):
                    literal = str_literal(node)
                    if literal is None or not _KEYLIKE_RE.match(literal):
                        continue
                    problem = _key_problem(literal)
                    if problem:
                        findings.append(
                            Finding(
                                path=file.display_path,
                                line=node.lineno,
                                col=node.col_offset,
                                rule="MET001",
                                severity=Severity.ERROR,
                                message=(
                                    f"metric key literal {literal!r} is "
                                    f"not canonical: {problem}"
                                ),
                                hint=(
                                    "build keys with "
                                    "repro.obs.metrics.metric_key() "
                                    "instead of hand-formatting"
                                ),
                                end_line=end_line(node),
                            )
                        )

        for name in sorted(types_seen):
            registered = types_seen[name]
            if len(registered) < 2:
                continue
            kinds = sorted(registered)
            first_kind = kinds[0]
            for kind in kinds[1:]:
                path, line = registered[kind]
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="MET002",
                        severity=Severity.ERROR,
                        message=(
                            f"metric {name!r} registered as {kind} here "
                            f"but as {first_kind} at "
                            f"{registered[first_kind][0]}:"
                            f"{registered[first_kind][1]} — the registry "
                            "raises TypeError on whichever run hits both"
                        ),
                        hint="give the two instruments distinct names",
                    )
                )
        return findings

    def _check_call(
        self,
        file,
        node: ast.Call,
        types_seen: Dict[str, Dict[str, Tuple[str, int]]],
        is_metrics_impl: bool,
    ) -> List[Finding]:
        func = node.func
        method = None
        if isinstance(func, ast.Attribute):
            method = func.attr
        elif isinstance(func, ast.Name):
            method = func.id
        if method == "metric_key":
            name_node = node.args[0] if node.args else None
        elif method in _INSTRUMENT_METHODS and isinstance(func, ast.Attribute):
            if is_metrics_impl:
                return []  # the registry's own plumbing
            name_node = node.args[0] if node.args else None
        else:
            return []
        name = str_literal(name_node)
        if name is None:
            return []  # dynamic names are legal (collector loops)
        findings: List[Finding] = []
        if not _NAME_RE.match(name):
            findings.append(
                Finding(
                    path=file.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="MET001",
                    severity=Severity.ERROR,
                    message=(
                        f"metric name {name!r} is not a bare identifier "
                        "— labels belong in keyword arguments, not "
                        "hand-formatted into the name"
                    ),
                    hint='write e.g. counter("drops", ap=ap_id)',
                    end_line=end_line(node),
                )
            )
        if method in _INSTRUMENT_METHODS:
            types_seen.setdefault(name, {}).setdefault(
                method, (file.display_path, node.lineno)
            )
        return findings
