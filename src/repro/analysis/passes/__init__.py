"""The built-in analysis passes."""

from repro.analysis.passes.checkpoint import CheckpointCoveragePass
from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.flags import FlagManifestPass
from repro.analysis.passes.metricnames import MetricNamePass
from repro.analysis.passes.tracekinds import TraceKindPass

__all__ = [
    "CheckpointCoveragePass",
    "DeterminismPass",
    "FlagManifestPass",
    "MetricNamePass",
    "TraceKindPass",
]
