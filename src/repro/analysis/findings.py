"""The findings model every analysis pass reports through.

A :class:`Finding` is one rule violation at one source location.  It
carries everything CI and a human need to act on it: the rule id (for
suppressions and ``--rule`` filtering), a severity, ``file:line:col``,
a message stating the defect, and a fix hint stating the repo-approved
way out.  Findings order deterministically (path, line, col, rule), so
two runs over the same tree print byte-identical reports — the same
discipline the simulator holds its own exports to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Finding", "Severity", "render_text", "render_json_payload"]


class Severity:
    """Finding severities.  Both fail the CLI; the split exists so a
    report reads in order of how urgently each entry breaks a guarantee
    (an unseeded RNG draw is a determinism bug *now*; an unused
    suppression is rot that hides the next one)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    hint: str = ""
    #: Last source line of the offending node — suppressions anywhere
    #: in [line, end_line] apply (multi-line calls put the comment on
    #: whichever physical line reads best).
    end_line: int = field(default=0, compare=False)

    def span(self) -> range:
        return range(self.line, max(self.end_line, self.line) + 1)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


def render_text(findings: List[Finding]) -> str:
    """Human-facing report, one finding per line, hint indented."""
    lines: List[str] = []
    for finding in sorted(findings):
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col} "
            f"{finding.rule} {finding.severity}: {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    return "\n".join(lines)


def render_json_payload(findings: List[Finding]) -> Dict[str, object]:
    """The ``--json`` document: deterministic, machine-ingestible."""
    ordered = sorted(findings)
    return {
        "findings": [finding.to_dict() for finding in ordered],
        "count": len(ordered),
        "errors": sum(1 for f in ordered if f.severity == Severity.ERROR),
        "warnings": sum(1 for f in ordered if f.severity == Severity.WARNING),
    }
