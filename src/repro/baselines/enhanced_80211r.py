"""Enhanced 802.11r: the paper's comparison scheme (§5.1).

A performance-tuned combination of 802.11r fast BSS transition and
802.11k neighbor reports, built the way the paper expects industry to
build it:

1. every AP beacons each 100 ms; the client estimates per-AP RSSI from
   beacons;
2. the client switches to the highest-RSSI AP once the current AP's
   smoothed RSSI drops below a threshold, with a one-second time
   hysteresis;
3. association/authentication state is pre-shared between APs over the
   backhaul, so a handover costs only the over-the-air reassociation
   exchange.

Unlike WGTT there is no fan-out: downlink packets are routed to exactly
one AP (by a thin WLC), whose queued backlog is stranded whenever the
client moves on — the stranded AP burns airtime retrying into the
client's wake, precisely the failure mode §2 and Figure 14 document.

The *stock* 802.11r variant of §2 (Figure 4) is the same machinery with
``min_history_us`` set to the 5-second RSSI history Cisco documents,
which is longer than a 20 mph client stays in a picocell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.mac.frames import BeaconFrame, MgmtFrame
from repro.mac.medium import WirelessMedium
from repro.mac.wifi_device import WifiDevice
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.tunnel import tunnel_wire_size
from repro.sim.engine import MS, SECOND, Simulator
from repro.sim.rng import RngRegistry


@dataclass
class RoamingConfig:
    """Client-side roaming policy parameters."""

    #: Switch trigger: current AP's smoothed RSSI below this.
    #: Calibrated to reproduce the sticky behaviour the paper measured:
    #: its Enhanced 802.11r client switched only ~0.3-1 times/s at
    #: 15 mph (Figs 14-15) — i.e. its effective trigger sat near the
    #: beacon-decode floor, where the smoothed RSSI *freezes* (no more
    #: beacon samples) and the client hangs on to a dead AP until the
    #: staleness timer clears it. That freeze-then-hang dynamic is the
    #: §2 critique in mechanism form.
    rssi_threshold_dbm: float = -85.0
    #: Time hysteresis between switches (paper: one second).
    time_hysteresis_us: int = 1 * SECOND
    #: RSSI smoothing: EWMA weight of the newest beacon.
    ewma_alpha: float = 0.5
    #: Beacon history required from the *current* AP before the client
    #: will decide to leave it. Enhanced 802.11r decides immediately
    #: (0); stock implementations wait for a 5 s history (§2).
    min_history_us: int = 0
    #: Forget an AP not heard from for this long.
    stale_after_us: int = 2 * SECOND
    #: After a failed FT-over-DS exchange, wait this long before trying
    #: a direct over-the-air association with the target.
    fallback_delay_us: int = 200 * MS
    #: Cooldown before re-attempting after a completely failed handover.
    retry_cooldown_us: int = 300 * MS


class BaselineWlc:
    """Minimal wireless LAN controller: routes downlink to one AP."""

    def __init__(
        self,
        sim: Simulator,
        backhaul: EthernetBackhaul,
        wlc_id: str = "wlc",
    ):
        self._sim = sim
        self._backhaul = backhaul
        self.wlc_id = wlc_id
        self._route: Dict[str, str] = {}
        self._ap_ids: List[str] = []
        self.on_uplink: Callable[[Packet], None] = lambda packet: None
        self.stats = {"downlink_routed": 0, "downlink_unrouted": 0}
        backhaul.register(wlc_id, self._on_backhaul)

    def add_ap(self, ap_id: str) -> None:
        self._ap_ids.append(ap_id)

    def route_for(self, client_id: str) -> Optional[str]:
        return self._route.get(client_id)

    def accept_downlink(self, packet: Packet) -> None:
        ap_id = self._route.get(packet.dst)
        if ap_id is None:
            self.stats["downlink_unrouted"] += 1
            return
        self.stats["downlink_routed"] += 1
        self._backhaul.send(
            self.wlc_id,
            ap_id,
            "data",
            packet,
            size_bytes=tunnel_wire_size(packet, downlink=True),
        )

    def _on_backhaul(self, src: str, kind: str, payload: object) -> None:
        if kind == "uplink":
            self.on_uplink(payload)
        elif kind == "assoc-update":
            client_id, ap_id = payload
            self._route[client_id] = ap_id


class Baseline80211rAp:
    """One beaconing baseline AP with a per-client downlink buffer."""

    #: Socket/interface buffering above the Wi-Fi stack (packets). Adds
    #: to the MAC service queue, giving the stranded-backlog effect.
    UPPER_BUFFER_CAPACITY = 300

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        backhaul: EthernetBackhaul,
        rng: RngRegistry,
        ap_id: str,
        wlc_id: str = "wlc",
    ):
        self._sim = sim
        self._backhaul = backhaul
        self.ap_id = ap_id
        self._wlc_id = wlc_id
        self.device = WifiDevice(sim, medium, rng, ap_id, role="ap")
        self.device.on_packet = self._uplink_received
        self.device.on_mgmt = self._mgmt_received
        self.device.on_refill_needed = self._refill
        self.device.start_beaconing()
        self._buffers: Dict[str, DropTailQueue] = {}
        self._refilling = False
        self.stats = {"reassociations": 0, "uplink_forwarded": 0}
        backhaul.register(ap_id, self._on_backhaul)

    def _buffer(self, client_id: str) -> DropTailQueue:
        queue = self._buffers.get(client_id)
        if queue is None:
            queue = DropTailQueue(self.UPPER_BUFFER_CAPACITY, name=f"sock:{client_id}")
            self._buffers[client_id] = queue
        return queue

    def backlog(self, client_id: str) -> int:
        """Stranded packets: socket buffer + MAC service queue."""
        return len(self._buffer(client_id)) + self.device.queue_len(client_id)

    def _on_backhaul(self, src: str, kind: str, payload: object) -> None:
        if kind == "data":
            packet: Packet = payload
            self._buffer(packet.dst).enqueue(packet)
            self._refill(packet.dst, self.device.queue_room(packet.dst))
        elif kind == "ft-forward":
            # A peer AP brokered an FT request: admit the client and
            # answer over the air with the (re)association response.
            self._complete_association(payload)

    def _refill(self, client_id: str, room: int = 0) -> None:
        # Re-entrancy guard: enqueue kicks the device which asks for
        # refills again; the nested call must not double-fill.
        buffer = self._buffers.get(client_id)
        if buffer is None or self._refilling:
            return
        self._refilling = True
        try:
            while self.device.queue_room(client_id) > 0 and not buffer.empty:
                self.device.enqueue(buffer.dequeue(), client_id)
        finally:
            self._refilling = False

    def _uplink_received(self, packet: Packet, from_addr: str) -> None:
        self.stats["uplink_forwarded"] += 1
        self._backhaul.send(
            self.ap_id,
            self._wlc_id,
            "uplink",
            packet,
            size_bytes=tunnel_wire_size(packet, downlink=False),
        )

    def _mgmt_received(self, frame: MgmtFrame) -> None:
        client_id = frame.ta
        if frame.subtype == "ft-request":
            # 802.11r fast transition over the DS: the client asked us
            # (its *current* AP) to broker the move; forward to the
            # target over the backhaul.
            target = frame.payload.get("target")
            if target is not None:
                self._backhaul.send_control(
                    self.ap_id, target, "ft-forward", client_id
                )
            return
        if frame.subtype not in ("assoc-req", "reassoc-req"):
            return
        self._complete_association(client_id)

    def _complete_association(self, client_id: str) -> None:
        self.stats["reassociations"] += 1
        # Pre-shared auth state (the "Enhanced" part): respond at once.
        self.device.send_mgmt("assoc-resp", client_id)
        self._backhaul.send_control(
            self.ap_id, self._wlc_id, "assoc-update", (client_id, self.ap_id)
        )


class RoamingClientAgent:
    """Client-side 802.11r/k roaming logic around a WifiDevice."""

    def __init__(
        self,
        sim: Simulator,
        device: WifiDevice,
        config: Optional[RoamingConfig] = None,
    ):
        self._sim = sim
        self.device = device
        self.config = config or RoamingConfig()
        self.current_ap: Optional[str] = None
        self._smoothed_rssi: Dict[str, float] = {}
        self._first_heard_us: Dict[str, int] = {}
        self._last_heard_us: Dict[str, int] = {}
        self._last_switch_us = -(10**9)
        self._handover_in_progress = False
        self._handover_deadline_us = 0
        #: (time_us, ap_id) log of completed associations.
        self.association_log: List[Tuple[int, str]] = []
        self.failed_handovers = 0
        device.on_beacon = self._on_beacon
        device.on_mgmt = self._on_mgmt
        device.accept_data_from = self._accept_data_from

    # -- reception gates -------------------------------------------------

    def _accept_data_from(self, ta: str) -> bool:
        return ta == self.current_ap

    def uplink_peer(self) -> Optional[str]:
        return self.current_ap

    # -- measurement -------------------------------------------------------

    def _on_beacon(self, frame: BeaconFrame, rssi_dbm: float) -> None:
        ap_id = frame.ta
        now = self._sim.now
        alpha = self.config.ewma_alpha
        if ap_id in self._smoothed_rssi:
            self._smoothed_rssi[ap_id] = (
                alpha * rssi_dbm + (1 - alpha) * self._smoothed_rssi[ap_id]
            )
        else:
            self._smoothed_rssi[ap_id] = rssi_dbm
            self._first_heard_us[ap_id] = now
        self._last_heard_us[ap_id] = now
        self._forget_stale(now)
        self._evaluate(now)

    def _forget_stale(self, now: int) -> None:
        stale = [
            ap
            for ap, last in self._last_heard_us.items()
            if now - last > self.config.stale_after_us
        ]
        for ap in stale:
            self._smoothed_rssi.pop(ap, None)
            self._first_heard_us.pop(ap, None)
            self._last_heard_us.pop(ap, None)

    def rssi_of(self, ap_id: str) -> Optional[float]:
        return self._smoothed_rssi.get(ap_id)

    # -- the roaming decision ----------------------------------------------

    def _evaluate(self, now: int) -> None:
        if self._handover_in_progress:
            if now <= self._handover_deadline_us:
                return
            # A brokered handover that never completed: give up on it.
            self._handover_in_progress = False
            self.failed_handovers += 1
        if not self._smoothed_rssi:
            return
        best_ap = max(self._smoothed_rssi, key=lambda a: self._smoothed_rssi[a])
        if self.current_ap is None:
            self._handover(best_ap, "assoc-req")
            return
        if best_ap == self.current_ap:
            return
        if now - self._last_switch_us < self.config.time_hysteresis_us:
            return
        current_rssi = self._smoothed_rssi.get(self.current_ap)
        if current_rssi is not None:
            if current_rssi >= self.config.rssi_threshold_dbm:
                return
            # Stock 802.11r refuses to decide without a long history.
            history = now - self._first_heard_us.get(self.current_ap, now)
            if history < self.config.min_history_us:
                return
        else:
            # No measurement of the current AP yet: only treat it as
            # lost after it has had ample time to beacon; otherwise
            # we'd roam spuriously right after associating.
            if now - self._last_switch_us < self.config.stale_after_us:
                return
        self._handover(best_ap, "reassoc-req")

    def _handover(self, target_ap: str, subtype: str) -> None:
        """Move to ``target_ap``.

        When associated, 802.11r fast transition runs *over the DS*:
        the FT request is sent to the **current** AP, which brokers the
        move over the backhaul. That is exactly what breaks at speed —
        by the time the roam threshold trips, the current link is often
        already dead and the FT request never gets through (paper §2,
        Figure 4). After a failed FT the client falls back to a direct
        over-the-air association attempt with the target.
        """
        self._handover_in_progress = True
        self._handover_deadline_us = self._sim.now + 2 * SECOND
        if self.current_ap is None or subtype == "assoc-req":
            self._direct_associate(target_ap)
            return

        def on_ft_result(delivered: bool) -> None:
            if delivered:
                return  # now waiting for the target's assoc-resp
            self.failed_handovers += 1
            self._sim.schedule(
                self.config.fallback_delay_us,
                lambda: self._direct_associate(target_ap),
            )

        self.device.send_mgmt(
            "ft-request",
            self.current_ap,
            payload={"target": target_ap},
            on_result=on_ft_result,
        )

    def _direct_associate(self, target_ap: str) -> None:
        def on_result(delivered: bool) -> None:
            if delivered:
                return
            self.failed_handovers += 1
            # Give up for now; allow a fresh attempt after a cooldown.
            self._sim.schedule(
                self.config.retry_cooldown_us, self._clear_handover
            )

        self.device.send_mgmt("assoc-req", target_ap, on_result=on_result)

    def _clear_handover(self) -> None:
        self._handover_in_progress = False

    def _on_mgmt(self, frame: MgmtFrame) -> None:
        if frame.subtype != "assoc-resp":
            return
        self.current_ap = frame.ta
        self._last_switch_us = self._sim.now
        self._handover_in_progress = False
        self.association_log.append((self._sim.now, frame.ta))


def stock_80211r_config() -> RoamingConfig:
    """Stock 802.11r as measured in §2: 5 s of RSSI history required."""
    return RoamingConfig(min_history_us=5 * SECOND)
