"""Comparison schemes: Enhanced 802.11r and stock 802.11r roaming."""

from repro.baselines.enhanced_80211r import (
    Baseline80211rAp,
    BaselineWlc,
    RoamingClientAgent,
    RoamingConfig,
    stock_80211r_config,
)

__all__ = [
    "Baseline80211rAp",
    "BaselineWlc",
    "RoamingClientAgent",
    "RoamingConfig",
    "stock_80211r_config",
]
