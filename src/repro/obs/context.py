"""The observability context: tracer + metrics + optional profiler.

:class:`ObsConfig` is the picklable, config-file-friendly knob set that
rides on :class:`~repro.scenarios.testbed.TestbedConfig` (so parallel
``run_grid`` workers rebuild the same context); :class:`ObsContext` is
the live object every :class:`~repro.sim.engine.Simulator` carries as
``sim.obs``.  Everything defaults off: a default-configured run keeps
``tracer.active`` False and installs no profiler, which is what keeps
fault-free runs bit-identical to the pre-obs tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import EngineProfiler
from repro.obs.trace import Tracer

__all__ = ["ObsConfig", "ObsContext"]


@dataclass(frozen=True)
class ObsConfig:
    """Observability switches (all off by default)."""

    #: Record trace events/spans for export.
    trace: bool = False
    #: Also keep per-packet ("detail") records; large files.
    detail: bool = False
    #: Install the engine hot-loop profiler.
    profile: bool = False


class ObsContext:
    """One tracer + one metrics registry (+ optional profiler)."""

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config if config is not None else ObsConfig()
        self.trace = Tracer(
            recording=self.config.trace, detail=self.config.detail
        )
        self.metrics = MetricsRegistry()
        self.profiler: Optional[EngineProfiler] = (
            EngineProfiler() if self.config.profile else None
        )
