"""Unified observability layer: tracing, metrics, profiling.

* :mod:`repro.obs.trace` — structured event/span tracer with sim-time
  stamps, JSONL and Chrome ``trace_event`` export;
* :mod:`repro.obs.metrics` — central metrics registry (counters,
  gauges, histograms with labels, deterministic snapshots);
* :mod:`repro.obs.profile` — opt-in engine hot-loop profiler;
* :mod:`repro.obs.schema` — the event schema and a JSONL validator
  (``python -m repro.obs.schema trace.jsonl``);
* :mod:`repro.obs.recorders` — the experiment recorders
  (:class:`RateUsageLog` & co.), re-homed as event-stream consumers.
  Imported on demand, not here: it depends on the simulation stack,
  while this package root stays import-cycle-free so the engine itself
  can depend on :class:`ObsContext`.

Everything is off by default; a default-configured run is bit-identical
to one built before this package existed.  See docs/observability.md.
"""

from repro.obs.context import ObsConfig, ObsContext
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from repro.obs.profile import EngineProfiler
from repro.obs.trace import TraceEvent, Tracer, chrome_trace

__all__ = [
    "ObsConfig",
    "ObsContext",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "EngineProfiler",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
]
