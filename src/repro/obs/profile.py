"""Opt-in engine hot-loop profiler.

When installed on a :class:`~repro.sim.engine.Simulator`, every
dispatched event is timed with ``perf_counter`` and attributed to its
callback's qualified name (``Timer``-wrapped callbacks unwrap to the
inner function, so MAC/controller timers show up by owner rather than
as one ``Timer._fire`` bucket).  Off by default — the engine's only
always-on cost is a ``is None`` check per event, which the
``benchmarks/perf/obs_overhead.py`` gate holds under 3%.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["EngineProfiler"]


class EngineProfiler:
    """Per-event-type dispatch counts and cumulative wall time."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        #: key -> [dispatch_count, cumulative_seconds]
        self.entries: Dict[str, List[float]] = {}

    def add(self, key: str, seconds: float) -> None:
        entry = self.entries.get(key)
        if entry is None:
            self.entries[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def total_events(self) -> int:
        return int(sum(entry[0] for entry in self.entries.values()))

    def total_seconds(self) -> float:
        return float(sum(entry[1] for entry in self.entries.values()))

    def rows(self) -> List[Dict[str, object]]:
        """Breakdown rows, heaviest cumulative time first (name-stable
        tiebreak so reports are deterministic for equal weights)."""
        out = [
            {
                "callback": key,
                "count": int(entry[0]),
                "seconds": entry[1],
                "mean_us": entry[1] / entry[0] * 1e6 if entry[0] else 0.0,
            }
            for key, entry in self.entries.items()
        ]
        out.sort(key=lambda row: (-row["seconds"], row["callback"]))  # type: ignore[operator,index]
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "total_events": self.total_events(),
            "total_seconds": self.total_seconds(),
            "rows": self.rows(),
        }

    def report(self, top: int = 15) -> str:
        rows = self.rows()[:top]
        if not rows:
            return "profiler: no events dispatched"
        width = max(len(str(row["callback"])) for row in rows)
        lines = [
            f"{'callback'.ljust(width)}  {'count':>9}  {'total ms':>10}  {'mean us':>8}"
        ]
        for row in rows:
            lines.append(
                f"{str(row['callback']).ljust(width)}"
                f"  {row['count']:>9}"
                f"  {row['seconds'] * 1e3:>10.2f}"  # type: ignore[operator]
                f"  {row['mean_us']:>8.2f}"
            )
        lines.append(
            f"{'TOTAL'.ljust(width)}  {self.total_events():>9}"
            f"  {self.total_seconds() * 1e3:>10.2f}"
        )
        return "\n".join(lines)
