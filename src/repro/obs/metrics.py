"""Central metrics registry: counters, gauges, histograms with labels.

One :class:`MetricsRegistry` per :class:`~repro.obs.context.ObsContext`
absorbs the counters that used to live scattered across subsystem
``stats`` dicts (cyclic ``overflow_drops``, dedup hits, switch
outcomes, liveness misses, backhaul loss...).  Two feeding styles:

* **direct instruments** — ``registry.counter("x", ap="ap0").inc()``;
  memoized by (name, labels), so hot paths hold the instrument and pay
  one attribute increment;
* **collectors** — ``registry.register_collector(fn)`` pulls existing
  subsystem ``stats`` dicts at snapshot time.  Zero hot-path cost and
  zero behaviour risk, which is why the testbed wires today's counters
  through collectors instead of rewriting every increment site.

Snapshots are plain ``{key: value}`` dicts with deterministically
sorted keys, so a snapshot JSON-round-trips byte-identically.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsStream",
    "metric_key",
]

#: Default histogram bucket upper bounds (microseconds-friendly).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)

Number = Union[int, float]


def metric_key(name: str, /, **labels: object) -> str:
    """Canonical registry key: ``name{a=1,b=x}`` with sorted labels.

    The metric name is positional-only so a label may itself be called
    ``name`` (``metric_key("controller_stat", name="heartbeats")``).
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot_value(self) -> Number:
        return self.value


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("key", "value")

    def __init__(self, key: str):
        self.key = key
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, amount: Number) -> None:
        self.value += amount

    def snapshot_value(self) -> Number:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus-style)."""

    __slots__ = ("key", "bounds", "counts", "total", "count")

    def __init__(self, key: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted")
        self.key = key
        self.bounds = tuple(float(b) for b in buckets)
        #: Per-bound counts plus the +Inf overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def snapshot_value(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets[f"{bound:g}"] = cumulative
        buckets["+Inf"] = self.count
        return {"buckets": buckets, "count": self.count, "sum": self.total}


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Registry of instruments plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._collectors: List[Callable[[], Dict[str, object]]] = []

    # ------------------------------------------------------------------
    # instruments (memoized by key; type conflicts are an error)
    # ------------------------------------------------------------------

    def _get(self, cls: type, key: str, factory: Callable[[], Instrument]) -> Instrument:
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, **labels)
        return self._get(Counter, key, lambda: Counter(key))  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, **labels)
        return self._get(Gauge, key, lambda: Gauge(key))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        key = metric_key(name, **labels)
        bounds = buckets if buckets is not None else DEFAULT_BUCKETS
        instrument = self._get(Histogram, key, lambda: Histogram(key, bounds))
        return instrument  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # collectors
    # ------------------------------------------------------------------

    def register_collector(self, collect: Callable[[], Dict[str, object]]) -> None:
        """Register a pull-style source: called at :meth:`snapshot`
        time, returning ``{metric_key: value}``.  Collector keys
        overwrite earlier collectors' keys (registration order), never
        direct instruments'."""
        self._collectors.append(collect)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """All current values, keys deterministically sorted."""
        merged: Dict[str, object] = {}
        for collect in self._collectors:
            merged.update(collect())
        for key, instrument in self._instruments.items():
            merged[key] = instrument.snapshot_value()
        return {key: merged[key] for key in sorted(merged)}

    def to_json(self) -> str:
        """Canonical JSON rendering; ``json.loads`` round-trips it to
        exactly :meth:`snapshot`'s dict."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    def export_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")


class MetricsStream:
    """Append-only JSONL telemetry stream of registry snapshots.

    One line per sample: ``{"t_us": ..., "kind": ..., ...payload}`` in
    canonical JSON (sorted keys, minimal separators), flushed per line
    so a soak can be watched live with ``tail -f``.  The soak SLO
    guard writes ``sample`` lines (full snapshots), ``checkpoint``
    lines (determinism fingerprints) and ``violation`` lines through
    the same stream, giving one chronologically ordered artifact per
    run.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w")
        self.lines_written = 0

    def write(self, t_us: int, kind: str, payload: Dict[str, object]) -> None:
        record: Dict[str, object] = {"t_us": int(t_us), "kind": kind}
        record.update(payload)
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")
        self._handle.flush()
        self.lines_written += 1

    def write_snapshot(self, t_us: int, registry: "MetricsRegistry") -> None:
        self.write(t_us, "sample", {"metrics": registry.snapshot()})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "MetricsStream":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
