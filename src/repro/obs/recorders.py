"""Experiment recorders, re-homed as obs event-stream consumers.

:class:`RateUsageLog` used to monkey-patch ``device.on_rate_used`` on
every AP; it now subscribes to the tracer's ``ampdu-tx`` events — same
public results methods, no device hooks.  :class:`UplinkLossMeter`
samples transport counters (unchanged).  :class:`FailoverAudit` and
:class:`HaAudit` join the fault injector's trace with controller
timelines (unchanged joins, now living beside the event stream they
describe).  ``repro.metrics.recorder`` re-exports everything from here
for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.trace import TraceEvent
from repro.sim.engine import SECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.testbed import Testbed

__all__ = [
    "RateUsageLog",
    "UplinkLossMeter",
    "CrashRecovery",
    "FailoverAudit",
    "HaAudit",
]


class RateUsageLog:
    """Collects transmit-rate usage across all APs of a testbed.

    A thin consumer of the obs event stream: subscribing to ``ampdu-tx``
    flips the tracer active, so every AP device's guarded emit site
    starts reporting (time, MCS, #MPDUs) — the data behind the link
    bit-rate CDF (Figure 16).  Emission carries no randomness and
    mutates nothing, so an instrumented run is bit-identical to a bare
    one.
    """

    def __init__(self, testbed: "Testbed", client_id: Optional[str] = None):
        self._client_filter = client_id
        #: (time_us, ap_id, mcs_index, rate_bps, mpdu_count)
        self.entries: List[Tuple[int, str, int, int, int]] = []
        aps = testbed.wgtt_aps if testbed.wgtt_aps else testbed.baseline_aps
        self._ap_ids = frozenset(aps)
        testbed.sim.obs.trace.subscribe(self._on_event, names=("ampdu-tx",))

    def _on_event(self, event: TraceEvent) -> None:
        tags = event.tags
        node = tags.get("node")
        if node not in self._ap_ids:
            return  # client-side transmission
        if self._client_filter is not None and tags.get("peer") != self._client_filter:
            return
        self.entries.append(
            (
                event.ts,
                str(node),
                int(tags["mcs"]),  # type: ignore[arg-type]
                int(tags["rate_bps"]),  # type: ignore[arg-type]
                int(tags["count"]),  # type: ignore[arg-type]
            )
        )

    def rates_mbps(self, weight_by_mpdus: bool = True) -> List[float]:
        """The observed bit-rate sample set for the CDF."""
        values: List[float] = []
        for _, _, _, rate_bps, count in self.entries:
            repeat = count if weight_by_mpdus else 1
            values.extend([rate_bps / 1e6] * repeat)
        return values


class UplinkLossMeter:
    """Windowed uplink loss per client, from source/sink counters."""

    def __init__(self, sim, source, sink, bin_us: int = SECOND):
        self._sim = sim
        self._source = source
        self._sink = sink
        self.bin_us = bin_us
        self._last_sent = 0
        self._last_received = 0
        #: (time_us, loss_rate) per bin.
        self.series: List[Tuple[int, float]] = []

    def sample(self) -> None:
        """Close the current bin; call once per bin interval."""
        sent = self._source.packets_sent
        received = self._sink.packets_received()
        delta_sent = sent - self._last_sent
        delta_received = received - self._last_received
        self._last_sent, self._last_received = sent, received
        if delta_sent <= 0:
            loss = 0.0
        else:
            loss = max(0.0, 1.0 - delta_received / delta_sent)
        self.series.append((self._sim.now, loss))

    def loss_rates(self) -> List[float]:
        return [loss for _, loss in self.series]


@dataclass
class CrashRecovery:
    """One AP crash and the recovery (or not) of each affected client."""

    crash_us: int
    ap_id: str
    #: Clients the dead AP was serving at crash time.
    affected_clients: List[str]
    #: (client_id, latency_us, new_ap) per recovered client — latency is
    #: measured from the *crash instant*, so it includes heartbeat
    #: detection lag, not just the failover handshake.
    recoveries: List[Tuple[str, int, str]]
    #: Clients with no completed failover/switch after the crash.
    unrecovered: List[str]

    def latencies_us(self) -> List[int]:
        return [latency for _, latency, _ in self.recoveries]


class FailoverAudit:
    """End-to-end crash-to-recovery audit for a finished chaos run.

    A client "recovers" from a crash when the controller's serving
    timeline first moves it to a *different, live* AP after the crash
    instant — whether through the emergency failover handshake or (for
    crashes of non-serving APs) not at all.  Deadline verdicts compare
    the crash-to-recovery latency against
    ``config.failover_deadline_us``.
    """

    def __init__(self, testbed: "Testbed"):
        if testbed.controller is None:
            raise ValueError("FailoverAudit requires the WGTT scheme")
        self._testbed = testbed
        self._controller = testbed.controller
        self._deadline_us = testbed.config.wgtt.failover_deadline_us

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _timeline(self) -> List[Tuple[int, str, str]]:
        """The serving timeline, merged across an HA failover.

        After a standby promotion the promoted controller's timeline
        carries the post-takeover truth; the merge keeps recoveries
        visible to the crash joins no matter which controller drove
        them."""
        timeline = list(self._controller.serving_timeline)
        standby = getattr(self._testbed, "standby", None)
        if standby is not None:
            timeline.extend(standby.serving_timeline)
            timeline.sort(key=lambda entry: entry[0])
        return timeline

    def _serving_at(self, client_id: str, time_us: int) -> Optional[str]:
        """The AP serving ``client_id`` just before ``time_us``."""
        current: Optional[str] = None
        for at_us, client, ap_id in self._timeline():
            if at_us > time_us:
                break
            if client == client_id:
                current = ap_id
        return current

    def _clients(self) -> List[str]:
        return [c.client_id for c in self._testbed.clients]

    def crash_recoveries(self) -> List[CrashRecovery]:
        """One :class:`CrashRecovery` per executed crash, in order."""
        injector = self._testbed.fault_injector
        crash_events = injector.crash_times() if injector is not None else []
        out: List[CrashRecovery] = []
        timeline = self._timeline()
        for crash_us, ap_id in crash_events:
            affected = [
                client
                for client in self._clients()
                if self._serving_at(client, crash_us) == ap_id
            ]
            recoveries: List[Tuple[str, int, str]] = []
            unrecovered: List[str] = []
            for client in affected:
                moved = next(
                    (
                        (at_us, new_ap)
                        for at_us, c, new_ap in timeline
                        if c == client and at_us > crash_us and new_ap != ap_id
                    ),
                    None,
                )
                if moved is None:
                    unrecovered.append(client)
                else:
                    at_us, new_ap = moved
                    recoveries.append((client, at_us - crash_us, new_ap))
            out.append(
                CrashRecovery(
                    crash_us=crash_us,
                    ap_id=ap_id,
                    affected_clients=affected,
                    recoveries=recoveries,
                    unrecovered=unrecovered,
                )
            )
        return out

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------

    def failover_latencies_ms(self) -> List[float]:
        """Crash-to-recovery latency per recovered (crash, client)."""
        return [
            latency / 1_000.0
            for recovery in self.crash_recoveries()
            for latency in recovery.latencies_us()
        ]

    def deadline_violations(self) -> int:
        """Recoveries later than the deadline, plus unrecovered clients
        on crashes that actually affected someone."""
        violations = 0
        for recovery in self.crash_recoveries():
            violations += sum(
                1
                for latency in recovery.latencies_us()
                if latency > self._deadline_us
            )
            violations += len(recovery.unrecovered)
        return violations

    def post_restore_duplicates(self) -> int:
        """Uplink copies recognised as duplicates *after* a controller
        restore (standby promotion), thanks to the dedup key window the
        checkpoint carried over.  Each one is a duplicate the server
        would have seen had the window not been shipped.  Zero when no
        promotion happened (or HA is off)."""
        standby = getattr(self._testbed, "standby", None)
        if standby is None or not standby.promoted:
            return 0
        return standby.dedup.duplicates

    def summary(self) -> dict:
        recoveries = self.crash_recoveries()
        latencies = self.failover_latencies_ms()
        return {
            "crashes": len(recoveries),
            "affected_client_crashes": sum(
                1 for r in recoveries if r.affected_clients
            ),
            "recovered": sum(len(r.recoveries) for r in recoveries),
            "unrecovered": sum(len(r.unrecovered) for r in recoveries),
            "deadline_violations": self.deadline_violations(),
            "deadline_ms": self._deadline_us / 1_000.0,
            "mean_failover_ms": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "max_failover_ms": max(latencies) if latencies else None,
            "post_restore_duplicates": self.post_restore_duplicates(),
        }


class HaAudit:
    """Controller-outage audit for an HA run.

    Joins the injector's ``ctrl-crash`` trace with the standby's
    promotion instant, the AP array's re-home/hold counters, and the
    cluster's ingress accounting into the ext_ha headline numbers:
    control-plane recovery latency, duplicate leakage, and explicit
    (never silent) packet loss.
    """

    def __init__(self, testbed: "Testbed"):
        if getattr(testbed, "ha", None) is None:
            raise ValueError("HaAudit requires an HA-enabled testbed")
        self._testbed = testbed
        self._cluster = testbed.ha
        self._primary = testbed.controller
        self._standby = testbed.standby

    def controller_crash_times(self) -> List[int]:
        injector = self._testbed.fault_injector
        if injector is None:
            return []
        return [t for t, _ in injector.controller_crash_times()]

    def promotion_latency_us(self) -> Optional[int]:
        """First controller crash → standby promotion, or None."""
        crashes = self.controller_crash_times()
        promoted_at = self._standby.promoted_at_us
        if not crashes or promoted_at is None:
            return None
        return promoted_at - crashes[0]

    def clients_recovered(self) -> bool:
        """Every client is registered at the active controller with a
        live serving AP."""
        active = self._cluster.active_controller()
        if active is None:
            return False
        for client in self._testbed.clients:
            state = active.client_state(client.client_id)
            if state is None:
                return False
            ap = self._testbed.wgtt_aps.get(state.serving_ap)
            if ap is None or not ap.alive:
                return False
        return True

    def recovery_complete_us(self) -> Optional[int]:
        """When the *last* client re-registered at the promoted
        controller: the max over clients of each client's **first**
        serving-timeline entry at/after the promotion instant.  Later
        entries are ordinary mobility switches, not recovery — counting
        them would grow the latency with drive time."""
        promoted_at = self._standby.promoted_at_us
        if promoted_at is None or not self.clients_recovered():
            return None
        first_entry: Dict[str, int] = {}
        for at_us, client, _ in self._standby.serving_timeline:
            if at_us >= promoted_at and client not in first_entry:
                first_entry[client] = at_us
        if not first_entry:
            return promoted_at
        return max(first_entry.values())

    def overflow_drops(self) -> int:
        """Cyclic-queue slots destroyed while undelivered, array-wide."""
        return sum(
            queue.overflow_drops
            for ap in self._testbed.wgtt_aps.values()
            for queue in ap._cyclic.values()
        )

    def summary(self) -> dict:
        aps = self._testbed.wgtt_aps.values()
        crashes = self.controller_crash_times()
        latency = self.promotion_latency_us()
        recovery_at = self.recovery_complete_us()
        return {
            "controller_crashes": len(crashes),
            "promoted": self._standby.promoted,
            "promotion_latency_ms": (
                latency / 1_000.0 if latency is not None else None
            ),
            "recovery_latency_ms": (
                (recovery_at - crashes[0]) / 1_000.0
                if recovery_at is not None and crashes
                else None
            ),
            "clients_recovered": self.clients_recovered(),
            "checkpoints_shipped": self._cluster.checkpoints_shipped,
            "checkpoint_bytes": self._cluster.checkpoint_bytes,
            "lost_downlink": self._cluster.lost_downlink,
            "aps_rehomed": sum(ap.stats["rehomed"] for ap in aps),
            "hold_buffered": sum(ap.stats["hold_buffered"] for ap in aps),
            "hold_dropped": sum(ap.stats["hold_dropped"] for ap in aps),
            "hold_flushed": sum(ap.stats["hold_flushed"] for ap in aps),
            "overflow_drops": self.overflow_drops(),
            "post_restore_duplicates": (
                self._standby.dedup.duplicates
                if self._standby.promoted
                else 0
            ),
        }
