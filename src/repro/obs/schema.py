"""The trace event schema and a JSONL validator.

``python -m repro.obs.schema trace.jsonl`` validates an exported trace
file record by record (CI's obs-smoke job runs exactly this).  The
schema is deliberately small and stdlib-checked — no jsonschema
dependency:

======== ======== ======================================================
field    type     meaning
======== ======== ======================================================
seq      int      global emission order (unique per file)
ts       int      simulation time, microseconds
kind     str      "event" (instant) or "span" (has an end)
sub      str      emitting subsystem ("controller", "ap", "mac", ...)
name     str      event name ("switch", "stop-processing", "tx", ...)
track    str|null rendering lane ("switch/client0", "ha", ...)
tags     object   entity tags (ap, client, switch_id, pkt index, ...)
end      int      spans only: end time, >= ts
end_seq  int      spans only: end emission order, > seq
======== ======== ======================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "EVENT_KINDS",
    "TRACE_NAMES",
    "validate_record",
    "validate_lines",
    "main",
]

EVENT_KINDS = ("event", "span")

#: Every event/span name any subsystem emits, with the subsystems
#: allowed to emit it.  This is the other half of the emit-site
#: contract: the ``repro.analysis`` trace-kind pass (TRC001/TRC002)
#: statically cross-checks the emit sites in ``src/`` against this
#: catalog in both directions, so an event name cannot exist only at
#: its emit site (invisible to consumers) or only here (a contract
#: nothing fulfills).  Keep it sorted; add the name in the same change
#: that adds the emit site.
TRACE_NAMES: Dict[str, Tuple[str, ...]] = {
    "air-tx": ("medium",),
    "ampdu-tx": ("mac",),
    "ap-crash": ("ap",),
    "ap-dead": ("controller",),
    "ap-recovered": ("controller",),
    "ap-restart": ("ap",),
    "ba-forward": ("ap",),
    "ba-timeout": ("mac",),
    "checkpoint-restore": ("ha",),
    "checkpoint-ship": ("ha",),
    "corrupt-drop": ("backhaul",),
    "ctrl-crash": ("controller",),
    "ctrl-restart": ("controller",),
    "cyclic-insert": ("ap",),
    "downlink-lost": ("ha",),
    "downlink-paced": ("controller",),
    "dup-tx": ("backhaul",),
    "failover": ("controller",),
    "failover-initiated": ("controller",),
    "failover-no-candidate": ("controller",),
    "failover-processing": ("ap",),
    "fault": ("faults",),
    "fault-drop": ("backhaul",),
    "gray-drop": ("backhaul",),
    "hold-enter": ("ap",),
    "hold-exit": ("ap",),
    "invariant-violation": ("invariants",),
    "loss-drop": ("backhaul",),
    "oneway-drop": ("backhaul",),
    "promotion": ("ha",),
    "rehome": ("ap",),
    "replay-tx": ("backhaul",),
    "serving-relinquish": ("ap",),
    "serving-update": ("controller",),
    "shard-handoff-abandon": ("shard",),
    "shard-handoff-ack": ("shard",),
    "shard-handoff-in": ("shard",),
    "shard-handoff-out": ("shard",),
    "shard-handoff-retry": ("shard",),
    "stale-ack": ("controller",),
    "stale-ctrl-epoch": ("ap",),
    "stale-serving-claim": ("controller",),
    "stale-sta-sync": ("controller",),
    "stale-switch-msg": ("ap",),
    "start-processing": ("ap",),
    "stop-processing": ("ap",),
    "switch": ("controller",),
    "switch-retry": ("controller",),
    "takeover-announce": ("ha",),
    "tx": ("backhaul",),
    "uplink-deliver": ("testbed",),
}

#: field -> required python type for every record.
_REQUIRED: Dict[str, type] = {
    "seq": int,
    "ts": int,
    "kind": str,
    "sub": str,
    "name": str,
    "tags": dict,
}


def validate_record(record: object, check_names: bool = True) -> List[str]:
    """Problems with one decoded record; empty list when valid.

    ``check_names`` additionally holds ``(sub, name)`` to the
    :data:`TRACE_NAMES` catalog — the default, since every trace this
    repo produces must come from a cataloged emit site.  Pass False
    when validating traces from a build with out-of-tree emitters.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    for field, expected in _REQUIRED.items():
        value = record.get(field)
        if not isinstance(value, expected) or isinstance(value, bool):
            problems.append(f"field {field!r} must be {expected.__name__}")
    if "track" not in record:
        problems.append("field 'track' missing (str or null)")
    elif record["track"] is not None and not isinstance(record["track"], str):
        problems.append("field 'track' must be str or null")
    if problems:
        return problems
    if record["kind"] not in EVENT_KINDS:
        problems.append(f"kind {record['kind']!r} not in {EVENT_KINDS}")
    if check_names:
        allowed = TRACE_NAMES.get(record["name"])
        if allowed is None:
            problems.append(
                f"name {record['name']!r} not in the TRACE_NAMES catalog"
            )
        elif record["sub"] not in allowed:
            problems.append(
                f"name {record['name']!r} emitted by sub {record['sub']!r}, "
                f"catalog allows {sorted(allowed)}"
            )
    if record["ts"] < 0 or record["seq"] < 0:
        problems.append("ts/seq must be non-negative")
    if record["kind"] == "span":
        end, end_seq = record.get("end"), record.get("end_seq")
        if not isinstance(end, int) or isinstance(end, bool):
            problems.append("span field 'end' must be int")
        elif end < record["ts"]:
            problems.append("span ends before it begins")
        if not isinstance(end_seq, int) or isinstance(end_seq, bool):
            problems.append("span field 'end_seq' must be int")
        elif end_seq <= record["seq"]:
            problems.append("span end_seq must exceed seq")
    else:
        for forbidden in ("end", "end_seq"):
            if forbidden in record:
                problems.append(f"instant event carries {forbidden!r}")
    return problems


def validate_lines(
    lines: Iterable[str], check_names: bool = True
) -> Tuple[int, List[str]]:
    """Validate a JSONL stream; returns (record_count, problems)."""
    problems: List[str] = []
    seen_seqs: Set[int] = set()
    count = 0
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"line {line_no}: not JSON ({error.msg})")
            continue
        for problem in validate_record(record, check_names=check_names):
            problems.append(f"line {line_no}: {problem}")
        if isinstance(record, dict) and isinstance(record.get("seq"), int):
            if record["seq"] in seen_seqs:
                problems.append(f"line {line_no}: duplicate seq {record['seq']}")
            seen_seqs.add(record["seq"])
    return count, problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="validate a JSONL trace export against the event schema",
    )
    parser.add_argument("path", help="trace .jsonl file")
    parser.add_argument(
        "--max-problems", type=int, default=20,
        help="stop printing after this many problems",
    )
    parser.add_argument(
        "--no-name-check",
        action="store_true",
        help="skip the TRACE_NAMES catalog check (foreign traces)",
    )
    args = parser.parse_args(argv)
    with open(args.path) as handle:
        count, problems = validate_lines(
            handle, check_names=not args.no_name_check
        )
    if problems:
        for problem in problems[: args.max_problems]:
            print(f"INVALID {problem}", file=sys.stderr)
        extra = len(problems) - args.max_problems
        if extra > 0:
            print(f"INVALID ... and {extra} more", file=sys.stderr)
        return 1
    print(f"OK {count} records valid ({args.path})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
