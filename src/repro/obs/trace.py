"""Structured event tracing with simulation-time stamps.

One :class:`Tracer` hangs off every :class:`~repro.sim.engine.Simulator`
(via the :class:`~repro.obs.context.ObsContext`), so any subsystem that
already holds ``self._sim`` can emit typed events and spans without new
plumbing.  Two consumption paths share the same emit sites:

* **recording** (``--trace``): records accumulate in memory and export
  as JSONL (one canonical, byte-deterministic object per line) or as a
  Chrome ``trace_event`` file for chrome://tracing / Perfetto;
* **live sinks** (:meth:`Tracer.subscribe`): recorders such as
  :class:`~repro.obs.recorders.RateUsageLog` receive matching events as
  they happen, replacing the monkey-patched device hooks of old.

The zero-overhead-when-off contract: every emit site is guarded by
``if tracer.active:`` — a single attribute load — and ``active`` is
False unless recording was requested or a sink subscribed.  Emission
never draws randomness and never mutates protocol state, so a traced
run takes the exact same event path as an untraced one.

Timestamps are the integer microsecond simulation clock.  ``seq`` is a
global emission counter that makes ordering among same-instant records
exact; spans carry both their begin and end (ts, seq) pairs, which is
what lets the Chrome exporter nest same-instant spans (an HA promotion
and its restore/overlay children all happen at one sim instant) by
containment.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "chrome_trace"]

#: Sub-microsecond offset per sequence number used only by the Chrome
#: exporter: it spreads same-instant records apart (1 ns per seq) so
#: nested spans render as nested slices instead of zero-width ties.
_CHROME_SEQ_EPSILON_US = 1e-3


class TraceEvent:
    """One trace record: an instant event or a completed span."""

    __slots__ = ("seq", "ts", "kind", "sub", "name", "track", "tags", "end_ts", "end_seq")

    def __init__(
        self,
        seq: int,
        ts: int,
        kind: str,
        sub: str,
        name: str,
        track: Optional[str],
        tags: Dict[str, object],
    ):
        self.seq = seq
        self.ts = ts
        #: "event" (instant) or "span" (has an end).
        self.kind = kind
        #: Emitting subsystem ("controller", "ap", "mac", "backhaul", ...).
        self.sub = sub
        self.name = name
        #: Logical lane for rendering ("switch/client0", "ha", ...).
        self.track = track
        self.tags = tags
        self.end_ts: Optional[int] = None
        self.end_seq: Optional[int] = None

    @property
    def duration_us(self) -> Optional[int]:
        if self.end_ts is None:
            return None
        return self.end_ts - self.ts

    def to_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "sub": self.sub,
            "name": self.name,
            "track": self.track,
            "tags": self.tags,
        }
        if self.kind == "span":
            record["end"] = self.end_ts
            record["end_seq"] = self.end_seq
        return record

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators —
        the byte-identical-determinism contract for JSONL exports."""
        return json.dumps(self.to_record(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f" end={self.end_ts}" if self.kind == "span" else ""
        return f"<TraceEvent #{self.seq} {self.sub}/{self.name} @{self.ts}{span}>"


class Tracer:
    """Event/span recorder bound to one simulator clock.

    ``active`` is a plain attribute (not a property) so hot paths pay a
    single attribute load when tracing is off.  It flips True when
    recording is enabled or any live sink subscribes.
    """

    def __init__(self, recording: bool = False, detail: bool = False):
        #: Guard read by every emit site.
        self.active = recording
        #: Whether per-packet ("detail") records are kept.  Sinks always
        #: see matching detail events; the recording buffer only keeps
        #: them when detail capture was requested, so a default traced
        #: drive stays protocol-sized instead of packet-sized.
        self.detail = detail
        self._recording = recording
        self._clock: Optional[Callable[[], int]] = None
        self._seq = 0
        self._next_span_id = 1
        self._open: Dict[int, TraceEvent] = {}
        self.records: List[TraceEvent] = []
        self._sinks: List[Tuple[Optional[frozenset], Callable[[TraceEvent], None]]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def bind_clock(self, sim: object) -> None:
        """Attach the simulation clock (called by ``Simulator.__init__``)."""
        self._clock = lambda: sim.now  # type: ignore[attr-defined]

    def now(self) -> int:
        return self._clock() if self._clock is not None else 0

    def set_recording(self, recording: bool) -> None:
        self._recording = recording
        self.active = self._recording or bool(self._sinks)

    def subscribe(
        self,
        sink: Callable[[TraceEvent], None],
        names: Optional[Tuple[str, ...]] = None,
    ) -> None:
        """Register a live consumer.

        ``sink`` is called with every matching :class:`TraceEvent` as it
        is emitted (spans on completion).  ``names`` filters by event
        name; None receives everything.  Subscribing flips ``active``
        on, so guarded emit sites start producing.
        """
        self._sinks.append((frozenset(names) if names is not None else None, sink))
        self.active = True

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def _stamp(self) -> Tuple[int, int]:
        seq = self._seq
        self._seq = seq + 1
        return self.now(), seq

    def _dispatch(self, event: TraceEvent) -> None:
        for names, sink in self._sinks:
            if names is None or event.name in names:
                sink(event)

    def emit(
        self,
        sub: str,
        name: str,
        track: Optional[str] = None,
        detail: bool = False,
        **tags: object,
    ) -> None:
        """Record an instant event.

        ``detail=True`` marks per-packet-volume records: they always
        reach sinks but are only kept in the recording buffer when
        detail capture is on.
        """
        ts, seq = self._stamp()
        event = TraceEvent(seq, ts, "event", sub, name, track, tags)
        if self._recording and (not detail or self.detail):
            self.records.append(event)
        if self._sinks:
            self._dispatch(event)

    def begin(
        self,
        sub: str,
        name: str,
        track: Optional[str] = None,
        **tags: object,
    ) -> int:
        """Open a span; returns an id for :meth:`end`."""
        ts, seq = self._stamp()
        span_id = self._next_span_id
        self._next_span_id += 1
        self._open[span_id] = TraceEvent(seq, ts, "span", sub, name, track, tags)
        return span_id

    def end(self, span_id: int, **tags: object) -> None:
        """Close a span; extra tags merge into the record."""
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end_ts, span.end_seq = self._stamp()
        if tags:
            span.tags.update(tags)
        if self._recording:
            self.records.append(span)
        if self._sinks:
            self._dispatch(span)

    def finish(self) -> None:
        """Close any spans still open (run ended mid-handshake, or a
        crash halted the owner): they end now, tagged ``open=True``."""
        for span_id in sorted(self._open):
            self.end(span_id, open=True)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        for record in self.records:
            yield record.to_json()

    def export_jsonl(self, path: str) -> int:
        """Write one canonical JSON object per line; returns the count."""
        count = 0
        with open(path, "w") as handle:
            for line in self.jsonl_lines():
                handle.write(line)
                handle.write("\n")
                count += 1
        return count

    def export_chrome(self, path: str) -> int:
        """Write the Chrome ``trace_event`` rendering of the buffer."""
        payload = chrome_trace(self.records)
        with open(path, "w") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        return len(payload["traceEvents"])


def chrome_trace(records: List[TraceEvent]) -> Dict[str, object]:
    """Render records as a Chrome ``trace_event`` document.

    Subsystems map to processes and tracks to threads, so Perfetto
    groups e.g. every ``switch/<client>`` lane under the emitting
    subsystem.  Spans become complete ("X") slices; the per-seq epsilon
    offset keeps same-instant parent/child spans strictly nested.
    """
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for record in records:
        pids.setdefault(record.sub, 0)
    for index, sub in enumerate(sorted(pids), start=1):
        pids[sub] = index
    for record in records:
        key = (record.sub, record.track or record.sub)
        tids.setdefault(key, 0)
    for index, key in enumerate(sorted(tids), start=1):
        tids[key] = index

    events: List[Dict[str, object]] = []
    for sub in sorted(pids):
        events.append(
            {
                "ph": "M",
                "pid": pids[sub],
                "tid": 0,
                "name": "process_name",
                "args": {"name": sub},
            }
        )
    for (sub, track) in sorted(tids):
        events.append(
            {
                "ph": "M",
                "pid": pids[sub],
                "tid": tids[(sub, track)],
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for record in records:
        pid = pids[record.sub]
        tid = tids[(record.sub, record.track or record.sub)]
        ts = record.ts + record.seq * _CHROME_SEQ_EPSILON_US
        entry: Dict[str, object] = {
            "pid": pid,
            "tid": tid,
            "name": record.name,
            "cat": record.sub,
            "ts": ts,
            "args": record.tags,
        }
        if record.kind == "span":
            end = record.end_ts + record.end_seq * _CHROME_SEQ_EPSILON_US  # type: ignore[operator]
            entry["ph"] = "X"
            entry["dur"] = max(end - ts, _CHROME_SEQ_EPSILON_US)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
