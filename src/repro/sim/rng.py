"""Deterministic random-number streams.

Every experiment takes a single integer seed. Subsystems (each fading
link, the MAC backoff draws, application think times, ...) must not
share one generator, or adding an event in one subsystem would perturb
every other — so we hand each consumer its own ``numpy`` Generator
derived from the root seed and a stable string label.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Derives independent, reproducible RNG streams from one seed."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, label: str) -> np.random.Generator:
        """Return the generator for ``label``, creating it on first use.

        The same ``(seed, label)`` pair always yields the same stream,
        independent of creation order.
        """
        generator = self._streams.get(label)
        if generator is None:
            digest = hashlib.sha256(
                f"{self.seed}:{label}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            generator = np.random.default_rng(child_seed)
            self._streams[label] = generator
        return generator

    def spawn(self, label: str) -> "RngRegistry":
        """A child registry whose streams are disjoint from the parent's."""
        digest = hashlib.sha256(f"{self.seed}/{label}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))


def seeded_generator(seed: int) -> np.random.Generator:
    """A generator from an explicit fixed seed.

    The blessed constructor for the few call sites that own a seed
    constant rather than a registry (e.g. the backhaul's default loss
    stream).  Routing them through here keeps ``repro.analysis``'s
    DET002 guarantee airtight: every ``np.random`` generator in the
    tree is constructed in this module, so auditing determinism means
    auditing this file's callers — nothing else can mint entropy.
    """
    return np.random.default_rng(int(seed))
