"""Microsecond-resolution discrete-event simulation engine.

The engine is a priority queue of ``(time_us, sequence, callback)``
entries. Time is an integer number of microseconds since the start of
the simulation; the sequence number makes event ordering deterministic
when several events share a timestamp (FIFO among equals).

Every other subsystem in this reproduction — the radio channel, the
802.11 MAC, the Ethernet backhaul, TCP — schedules its work through one
shared :class:`Simulator` instance.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter  # noqa-repro: DET001 — profiler wall-time measurement only; never feeds simulation state
from typing import Callable, List, Optional, Tuple

from repro.obs.context import ObsContext

#: One millisecond expressed in engine ticks (microseconds).
MS = 1_000
#: One second expressed in engine ticks (microseconds).
SECOND = 1_000_000


def _profile_key(callback: Optional[Callable[[], None]]) -> str:
    """Attribution key for the profiler: the callback's qualified name,
    with :class:`Timer`-wrapped callbacks unwrapped to their inner
    function so timers show up by owner rather than as one
    ``Timer._fire`` bucket."""
    if callback is None:
        return "<fired>"
    inner = getattr(callback, "__self__", None)
    if isinstance(inner, Timer):
        callback = inner._callback
    try:
        return callback.__qualname__
    except AttributeError:
        return type(callback).__name__


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in place but is skipped
    when it reaches the head of the queue. This keeps cancellation O(1),
    which matters because MAC-layer timers are cancelled far more often
    than they fire.

    The handle carries a back-reference to its simulator so the engine
    can keep an exact count of cancelled-but-queued entries — that count
    drives O(1) :meth:`Simulator.pending_events` and the periodic heap
    compaction that keeps long timer-heavy runs from growing the queue
    without bound.
    """

    __slots__ = ("time_us", "callback", "cancelled", "_sim", "_queued")

    def __init__(
        self,
        time_us: int,
        callback: Callable[[], None],
        sim: Optional["Simulator"] = None,
    ):
        self.time_us = time_us
        self.callback = callback
        self.cancelled = False
        self._sim = sim
        #: True while a heap entry for this handle exists.
        self._queued = sim is not None

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            if self._queued and self._sim is not None:
                self._sim._note_cancelled()

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled and self.callback is not None

    def _fire(self) -> None:
        callback, self.callback = self.callback, None
        if callback is not None:
            callback()


class Simulator:
    """The shared discrete-event loop.

    Parameters
    ----------
    start_time_us:
        Initial clock value; almost always zero, but tests occasionally
        start mid-stream to exercise wrap-around logic elsewhere.
    obs:
        Observability context (tracer + metrics + optional profiler).
        Every simulator carries one — a default, everything-off context
        is built when none is given, so subsystems can emit through
        ``sim.obs.trace`` unconditionally behind its ``active`` guard.
    """

    #: Queues shorter than this are never compacted — rebuilding a tiny
    #: heap costs more than skipping its few dead entries.
    COMPACT_MIN_SIZE = 64

    def __init__(self, start_time_us: int = 0, obs: Optional[ObsContext] = None):
        self._now = int(start_time_us)
        self._queue: List[Tuple[int, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0
        #: Cancelled entries still physically present in the heap.
        self._cancelled_in_queue = 0
        #: Heap rebuilds performed (observability for the perf bench).
        self.compactions = 0
        self.obs = obs if obs is not None else ObsContext()
        self.obs.trace.bind_clock(self)
        self._profiler = self.obs.profiler

    def set_profiler(self, profiler) -> None:
        """Install (or remove, with None) the hot-loop profiler."""
        self.obs.profiler = profiler
        self._profiler = profiler

    @property
    def now(self) -> int:
        """Current simulation time in microseconds."""
        return self._now

    def schedule(self, delay_us: int, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay_us`` microseconds.

        A negative delay is an error: the simulator never travels
        backwards in time.
        """
        if delay_us < 0:
            raise ValueError(f"cannot schedule {delay_us} us in the past")
        return self.schedule_at(self._now + int(delay_us), callback)

    def schedule_at(self, time_us: int, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute time ``time_us``."""
        if time_us < self._now:
            raise ValueError(
                f"cannot schedule at {time_us} us, now is {self._now} us"
            )
        handle = EventHandle(int(time_us), callback, self)
        heapq.heappush(self._queue, (int(time_us), next(self._sequence), handle))
        return handle

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`.

        When more than half of a non-trivial queue is dead weight, the
        heap is rebuilt without the cancelled entries.  Each compaction
        is O(live) and at least halves the queue, so the amortized cost
        per cancellation is O(1) — and a run that cancels millions of
        timers (every MAC ACK timeout) keeps its heap at the size of
        the *live* event set.
        """
        self._cancelled_in_queue += 1
        queue = self._queue
        if (
            len(queue) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_queue * 2 > len(queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap with only live entries (ordering preserved:
        the (time, sequence) keys are reused, so FIFO among equal
        timestamps survives compaction)."""
        live = []
        for entry in self._queue:
            handle = entry[2]
            if handle.cancelled:
                handle._queued = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0
        self.compactions += 1

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0, callback)

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the queue is drained."""
        while self._queue:
            time_us, _seq, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                handle._queued = False
                self._cancelled_in_queue -= 1
                continue
            return time_us
        return None

    def step(self) -> bool:
        """Execute the single next event. Returns False when none remain."""
        while self._queue:
            time_us, _seq, handle = heapq.heappop(self._queue)
            handle._queued = False
            if handle.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = time_us
            self.events_processed += 1
            profiler = self._profiler
            if profiler is None:
                handle._fire()
            else:
                # _fire nulls the callback before invoking it, so the
                # attribution key must be computed first.
                key = _profile_key(handle.callback)
                started = perf_counter()
                handle._fire()
                profiler.add(key, perf_counter() - started)
            return True
        return False

    def run(self, until_us: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until_us``.

        When ``until_us`` is given the clock is left exactly at
        ``until_us`` even if the last event fired earlier, so that
        successive ``run`` calls see a monotonic timeline.
        """
        self._running = True
        try:
            while self._running:
                next_time = self.peek_next_time()
                if next_time is None:
                    break
                if until_us is not None and next_time > until_us:
                    break
                self.step()
        finally:
            self._running = False
        if until_us is not None and self._now < until_us:
            self._now = int(until_us)

    def stop(self) -> None:
        """Abort a ``run`` in progress after the current event returns."""
        self._running = False

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1),
        served from the exact cancelled-entry counter."""
        return len(self._queue) - self._cancelled_in_queue

    def queue_size(self) -> int:
        """Physical heap length, dead entries included (observability)."""
        return len(self._queue)


class Timer:
    """A restartable one-shot timer bound to a simulator.

    This is the shape MAC and transport retransmission timers want:
    ``start`` re-arms (cancelling any previous schedule), ``stop``
    disarms, and the callback receives no arguments.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and self._handle.active

    @property
    def deadline_us(self) -> Optional[int]:
        """Absolute fire time while armed, else None.  The controller
        checkpointer reads this so a restored controller re-arms its
        timers at the *same* absolute instants."""
        return self._handle.time_us if self.armed else None

    def start(self, delay_us: int) -> None:
        """(Re-)arm the timer to fire ``delay_us`` from now."""
        self.stop()
        self._handle = self._sim.schedule(delay_us, self._fire)

    def start_at(self, time_us: int) -> None:
        """(Re-)arm the timer to fire at absolute ``time_us``; instants
        already in the past are clamped to now (fire on the next event
        round).  Used by checkpoint restore."""
        self.stop()
        self._handle = self._sim.schedule_at(
            max(int(time_us), self._sim.now), self._fire
        )

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
