"""Discrete-event simulation substrate: engine, timers, RNG streams."""

from repro.sim.engine import MS, SECOND, EventHandle, Simulator, Timer
from repro.sim.rng import RngRegistry

__all__ = ["MS", "SECOND", "EventHandle", "Simulator", "Timer", "RngRegistry"]
