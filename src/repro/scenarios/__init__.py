"""Scenario builders: the 8-AP roadside testbed and layout presets."""

from repro.scenarios.presets import (
    MIXED_DENSITY_AP_XS,
    dense_segment_bounds,
    following_config,
    mixed_density_config,
    multi_client_config,
    opposing_config,
    parallel_config,
    sparse_segment_bounds,
    two_ap_config,
)
from repro.scenarios.testbed import (
    ClientNode,
    Testbed,
    TestbedConfig,
    build_testbed,
)

__all__ = [
    "ClientNode",
    "Testbed",
    "TestbedConfig",
    "build_testbed",
    "MIXED_DENSITY_AP_XS",
    "dense_segment_bounds",
    "following_config",
    "mixed_density_config",
    "multi_client_config",
    "opposing_config",
    "parallel_config",
    "sparse_segment_bounds",
    "two_ap_config",
]
