"""Scenario presets matching the paper's deployments.

The testbed of Figure 9 is not uniformly spaced: APs 2–4 sit densely
while APs 5–7 are sparse. These helpers produce the layouts and
multi-client driving patterns (Figure 19) the evaluation uses.

Every preset is *declarative*: it returns a plain
:class:`~repro.scenarios.testbed.TestbedConfig` spec — nothing is
built until the spec is handed to ``Testbed(config)`` (equivalently
``ScenarioBuilder(config).build()``).  The :data:`PRESETS` registry
maps CLI-friendly names to these factories; ``python -m repro drive
--preset <name>`` resolves through it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.mobility.road import Road
from repro.mobility.vehicle import VehicleTrack
from repro.scenarios.testbed import TestbedConfig
from repro.shard.config import ShardConfig

#: Figure-9-style layout: a dense cluster (AP1–AP4) then a sparse tail
#: (AP5–AP7). Distances in metres along the road.
MIXED_DENSITY_AP_XS: List[float] = [10.0, 17.5, 23.0, 28.5, 34.0, 44.0, 54.0, 64.0]


def mixed_density_config(**overrides) -> TestbedConfig:
    """The paper's actual deployment shape: dense middle, sparse tail."""
    return TestbedConfig(ap_positions_m=list(MIXED_DENSITY_AP_XS), **overrides)


def dense_segment_bounds() -> tuple:
    """Road x-range covered by the densely deployed APs (AP2–AP4)."""
    return (MIXED_DENSITY_AP_XS[1], MIXED_DENSITY_AP_XS[4])


def sparse_segment_bounds() -> tuple:
    """Road x-range covered by the sparsely deployed APs (AP5–AP7)."""
    return (MIXED_DENSITY_AP_XS[4], MIXED_DENSITY_AP_XS[7])


def two_ap_config(**overrides) -> TestbedConfig:
    """The §2 motivation setup: two APs, 7.5 m apart."""
    return TestbedConfig(num_aps=2, ap_spacing_m=7.5, **overrides)


def following_config(
    speed_mph: float = 15.0, count: int = 2, spacing_m: float = 3.0, **overrides
) -> TestbedConfig:
    """Clients driving in single file, 3 m apart (Figure 19a)."""
    config = TestbedConfig(**overrides)
    road = Road(length_m=config.road_length_m())
    config.client_tracks = [
        VehicleTrack(
            road,
            start_x=config.client_start_x_m - i * spacing_m,
            speed_mph=speed_mph,
        )
        for i in range(count)
    ]
    return config


def parallel_config(speed_mph: float = 15.0, **overrides) -> TestbedConfig:
    """Two clients abreast in adjacent lanes (Figure 19b)."""
    config = TestbedConfig(**overrides)
    length = config.road_length_m()
    near_road = Road(length_m=length)
    far_road = Road(
        length_m=length,
        near_lane_y=near_road.far_lane_y,
        far_lane_y=near_road.near_lane_y,
    )
    config.client_tracks = [
        VehicleTrack(near_road, start_x=config.client_start_x_m, speed_mph=speed_mph),
        VehicleTrack(far_road, start_x=config.client_start_x_m, speed_mph=speed_mph),
    ]
    return config


def opposing_config(speed_mph: float = 15.0, **overrides) -> TestbedConfig:
    """Two clients passing in opposite directions (Figure 19c)."""
    config = TestbedConfig(**overrides)
    road = Road(length_m=config.road_length_m())
    config.client_tracks = [
        VehicleTrack(road, start_x=config.client_start_x_m, speed_mph=speed_mph),
        VehicleTrack(
            road,
            start_x=road.length_m - config.client_start_x_m,
            speed_mph=speed_mph,
            direction=-1,
        ),
    ]
    return config


def multi_client_config(
    count: int, speed_mph: float = 15.0, gap_m: float = 8.0, **overrides
) -> TestbedConfig:
    """N clients in the near lane with a healthy gap (Figure 17)."""
    config = TestbedConfig(**overrides)
    road = Road(length_m=config.road_length_m())
    config.client_tracks = [
        VehicleTrack(
            road,
            start_x=config.client_start_x_m - i * gap_m,
            speed_mph=speed_mph,
        )
        for i in range(count)
    ]
    return config


def shard_corridor_config(
    num_shards: int = 2, num_aps: int = 16, **overrides
) -> TestbedConfig:
    """A city-scale corridor split into contiguous AP-cluster shards.

    Each shard runs its own controller; clients crossing a shard
    boundary hand off via the checkpoint-based inter-shard protocol
    (``repro.shard``).  Tune the partition via ``shard=ShardConfig(...)``
    in ``overrides``.
    """
    if "shard" not in overrides:
        overrides["shard"] = ShardConfig(num_shards=num_shards)
    return TestbedConfig(
        num_aps=num_aps, sharding_enabled=True, **overrides
    )


#: CLI-facing preset registry: name -> declarative config factory.
#: Factories accept ``TestbedConfig`` field overrides as keyword
#: arguments; presets that pin ``client_tracks`` (following/parallel/
#: opposing) ignore speed overrides applied after the fact.
PRESETS: Dict[str, Callable[..., TestbedConfig]] = {
    "following": following_config,
    "mixed-density": mixed_density_config,
    "opposing": opposing_config,
    "parallel": parallel_config,
    "shard-corridor": shard_corridor_config,
    "two-ap": two_ap_config,
}


def preset_names() -> List[str]:
    return sorted(PRESETS)


def preset(name: str, **overrides) -> TestbedConfig:
    """Resolve a preset by registry name into a config spec."""
    factory = PRESETS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown preset {name!r}; available: {preset_names()}"
        )
    return factory(**overrides)
