"""Scenario presets matching the paper's deployments.

The testbed of Figure 9 is not uniformly spaced: APs 2–4 sit densely
while APs 5–7 are sparse. These helpers produce the layouts and
multi-client driving patterns (Figure 19) the evaluation uses.
"""

from __future__ import annotations

from typing import List

from repro.mobility.road import Road
from repro.mobility.vehicle import VehicleTrack
from repro.scenarios.testbed import TestbedConfig

#: Figure-9-style layout: a dense cluster (AP1–AP4) then a sparse tail
#: (AP5–AP7). Distances in metres along the road.
MIXED_DENSITY_AP_XS: List[float] = [10.0, 17.5, 23.0, 28.5, 34.0, 44.0, 54.0, 64.0]


def mixed_density_config(**overrides) -> TestbedConfig:
    """The paper's actual deployment shape: dense middle, sparse tail."""
    return TestbedConfig(ap_positions_m=list(MIXED_DENSITY_AP_XS), **overrides)


def dense_segment_bounds() -> tuple:
    """Road x-range covered by the densely deployed APs (AP2–AP4)."""
    return (MIXED_DENSITY_AP_XS[1], MIXED_DENSITY_AP_XS[4])


def sparse_segment_bounds() -> tuple:
    """Road x-range covered by the sparsely deployed APs (AP5–AP7)."""
    return (MIXED_DENSITY_AP_XS[4], MIXED_DENSITY_AP_XS[7])


def two_ap_config(**overrides) -> TestbedConfig:
    """The §2 motivation setup: two APs, 7.5 m apart."""
    return TestbedConfig(num_aps=2, ap_spacing_m=7.5, **overrides)


def following_config(
    speed_mph: float = 15.0, count: int = 2, spacing_m: float = 3.0, **overrides
) -> TestbedConfig:
    """Clients driving in single file, 3 m apart (Figure 19a)."""
    config = TestbedConfig(**overrides)
    road = Road(length_m=config.road_length_m())
    config.client_tracks = [
        VehicleTrack(
            road,
            start_x=config.client_start_x_m - i * spacing_m,
            speed_mph=speed_mph,
        )
        for i in range(count)
    ]
    return config


def parallel_config(speed_mph: float = 15.0, **overrides) -> TestbedConfig:
    """Two clients abreast in adjacent lanes (Figure 19b)."""
    config = TestbedConfig(**overrides)
    length = config.road_length_m()
    near_road = Road(length_m=length)
    far_road = Road(
        length_m=length,
        near_lane_y=near_road.far_lane_y,
        far_lane_y=near_road.near_lane_y,
    )
    config.client_tracks = [
        VehicleTrack(near_road, start_x=config.client_start_x_m, speed_mph=speed_mph),
        VehicleTrack(far_road, start_x=config.client_start_x_m, speed_mph=speed_mph),
    ]
    return config


def opposing_config(speed_mph: float = 15.0, **overrides) -> TestbedConfig:
    """Two clients passing in opposite directions (Figure 19c)."""
    config = TestbedConfig(**overrides)
    road = Road(length_m=config.road_length_m())
    config.client_tracks = [
        VehicleTrack(road, start_x=config.client_start_x_m, speed_mph=speed_mph),
        VehicleTrack(
            road,
            start_x=road.length_m - config.client_start_x_m,
            speed_mph=speed_mph,
            direction=-1,
        ),
    ]
    return config


def multi_client_config(
    count: int, speed_mph: float = 15.0, gap_m: float = 8.0, **overrides
) -> TestbedConfig:
    """N clients in the near lane with a healthy gap (Figure 17)."""
    config = TestbedConfig(**overrides)
    road = Road(length_m=config.road_length_m())
    config.client_tracks = [
        VehicleTrack(
            road,
            start_x=config.client_start_x_m - i * gap_m,
            speed_mph=speed_mph,
        )
        for i in range(count)
    ]
    return config
