"""Composable scenario construction over explicit region specs.

``Testbed.__init__`` used to be one monolithic constructor: substrate,
AP bank, control plane, HA, clients, fault plumbing and metrics
recorders all inline.  This module decomposes it into a
:class:`ScenarioBuilder` whose build stages are separately invokable
and parameterized by :class:`RegionSpec` — the piece the sharded
control plane (``repro.shard``) composes per AP-cluster region while
the classic single-controller path keeps running the exact same code
in the exact same order.

Byte-identity contract: ``ScenarioBuilder(config).build()`` executes
the identical construction sequence (RNG stream creation, backhaul
registration, timer arming) the legacy constructor did, so a
default-config run is bit-identical to the pre-builder tree.
``Testbed(config)`` itself now delegates here; ``build_testbed`` is a
deprecated shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.baselines.enhanced_80211r import Baseline80211rAp, BaselineWlc
from repro.channel.antenna import ParabolicAntenna
from repro.channel.link import ChannelMap, RadioPort
from repro.core.access_point import WgttAccessPoint
from repro.core.controller import WgttController
from repro.mac.medium import WirelessMedium
from repro.mobility.road import Position, Road
from repro.mobility.vehicle import VehicleTrack
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import IpIdAllocator
from repro.obs.context import ObsContext
from repro.scenarios.spatial import ApGridIndex
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.transport.flows import Host

if TYPE_CHECKING:
    from repro.scenarios.testbed import Testbed, TestbedConfig


@dataclass(frozen=True)
class RegionSpec:
    """One contiguous corridor stretch owned by one controller.

    Regions tile the corridor: region k's APs carry the global ids
    ``ap{first_ap_index} .. ap{first_ap_index + len(ap_xs) - 1}``, so a
    single region spanning every AP reproduces the legacy AP bank
    exactly.
    """

    #: Shard index (0 for the single-controller deployment).
    shard: int
    #: Global index of this region's first AP (id numbering offset).
    first_ap_index: int
    #: AP x-positions inside this region, corridor order.
    ap_xs: Tuple[float, ...]
    #: Backhaul id of the controller owning this region.
    controller_id: str = "controller"
    #: Backhaul id of the region's warm standby (None = no HA).
    standby_id: Optional[str] = None

    @property
    def ap_ids(self) -> Tuple[str, ...]:
        return tuple(
            f"ap{self.first_ap_index + i}" for i in range(len(self.ap_xs))
        )

    def span_m(self) -> Tuple[float, float]:
        """x-extent of this region's AP bank."""
        return (self.ap_xs[0], self.ap_xs[-1])


class ScenarioBuilder:
    """Composable construction of a :class:`Testbed`.

    Each ``build_*`` stage is separately invokable (the stage order of
    :meth:`construct_into` is the legacy constructor order); tests and
    bespoke scenarios may call stages individually against a blank
    testbed shell.
    """

    def __init__(
        self,
        config: "TestbedConfig",
        regions: Optional[List[RegionSpec]] = None,
    ):
        if config.scheme not in ("wgtt", "baseline"):
            raise ValueError(f"unknown scheme {config.scheme!r}")
        self.config = config
        self.regions: List[RegionSpec] = (
            list(regions) if regions is not None else self.plan_regions(config)
        )

    # ------------------------------------------------------------------
    # region planning
    # ------------------------------------------------------------------

    @staticmethod
    def plan_regions(config: "TestbedConfig") -> List[RegionSpec]:
        """Partition the corridor into regions.

        Sharding off: one region covering every AP under the classic
        ``"controller"`` id.  Sharding on: ``ShardConfig.num_shards``
        contiguous chunks, as even as possible (earlier shards take the
        remainder), each with its own controller id.
        """
        xs = config.ap_xs()
        if not config.sharding_enabled:
            standby = (
                config.wgtt.standby_id
                if config.scheme == "wgtt" and config.wgtt.ha_enabled
                else None
            )
            return [
                RegionSpec(
                    shard=0,
                    first_ap_index=0,
                    ap_xs=tuple(xs),
                    controller_id="controller",
                    standby_id=standby,
                )
            ]
        if config.scheme != "wgtt":
            raise ValueError("sharding requires the wgtt scheme")
        if config.wgtt.ha_enabled:
            raise ValueError(
                "sharding uses per-shard HA (ShardConfig.ha_enabled), "
                "not wgtt.ha_enabled"
            )
        if config.channel_plan is not None:
            raise ValueError("channel_plan is not supported with sharding")
        shard_cfg = config.shard
        count = shard_cfg.num_shards
        if count < 1:
            raise ValueError("num_shards must be >= 1")
        if count > len(xs):
            raise ValueError("more shards than APs")
        base, extra = divmod(len(xs), count)
        regions: List[RegionSpec] = []
        start = 0
        for k in range(count):
            size = base + (1 if k < extra else 0)
            regions.append(
                RegionSpec(
                    shard=k,
                    first_ap_index=start,
                    ap_xs=tuple(xs[start : start + size]),
                    controller_id=shard_cfg.controller_id(k),
                    standby_id=(
                        shard_cfg.standby_id(k)
                        if shard_cfg.ha_enabled
                        else None
                    ),
                )
            )
            start += size
        return regions

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def build(self) -> "Testbed":
        """Construct a fresh, fully wired testbed."""
        from repro.scenarios.testbed import Testbed

        return self.construct_into(Testbed.__new__(Testbed))

    def construct_into(self, tb: "Testbed") -> "Testbed":
        """Run every build stage, legacy constructor order."""
        tb.config = self.config
        self.build_substrate(tb)
        self.build_ap_bank(tb)
        self.build_control_plane(tb)
        self.build_ha(tb)
        self.build_clients(tb)
        self.build_faults(tb)
        self.build_recorders(tb)
        return tb

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------

    def build_substrate(self, tb: "Testbed") -> None:
        """Engine, RNG, road, channel, medium, backhaul, server."""
        config = self.config
        tb.obs = ObsContext(config.obs)
        tb.sim = Simulator(obs=tb.obs)
        tb.rng = RngRegistry(config.seed)
        road_length = config.road_length_m()
        tb.road = Road(length_m=road_length)
        tb.channel = ChannelMap(
            tb.sim,
            tb.rng,
            pathloss=config.pathloss,
            coherence_factor=config.coherence_factor,
            rician_k_db=config.rician_k_db,
        )
        tb.medium = WirelessMedium(
            tb.sim, tb.channel, batch_phy=config.batch_phy
        )
        tb.backhaul = EthernetBackhaul(tb.sim)
        tb.server_host = Host("server")
        tb._server_ip_ids = IpIdAllocator()

    def build_ap_bank(self, tb: "Testbed") -> None:
        """Radio ports + antennas for every region's APs, corridor
        order, plus the spatial index nearest-AP queries run on."""
        config = self.config
        tb.regions = list(self.regions)
        tb.ap_ids = []
        tb.ap_positions = {}
        tb.ap_index = ApGridIndex()
        for region in self.regions:
            for offset, x in enumerate(region.ap_xs):
                ap_id = f"ap{region.first_ap_index + offset}"
                mount = Position(x, -config.ap_setback_m, config.ap_height_m)
                antenna = ParabolicAntenna(
                    mount=mount,
                    boresight=Position(x, 0.0, 1.5),
                    beamwidth_deg=config.ap_beamwidth_deg,
                )
                tb.channel.register_port(
                    RadioPort(
                        ap_id,
                        antenna,
                        config.ap_tx_power_dbm,
                        lambda t, m=mount: m,
                    )
                )
                tb.ap_ids.append(ap_id)
                tb.ap_positions[ap_id] = mount
                tb.ap_index.add(ap_id, mount)

    def build_control_plane(self, tb: "Testbed") -> None:
        """Controller(s) + protocol APs: single WGTT controller,
        sharded controllers, or the baseline WLC."""
        config = self.config
        tb.controller = None
        tb.standby = None
        tb.ha = None
        tb.wlc = None
        tb.wgtt_aps = {}
        tb.baseline_aps = {}
        tb.shard_manager = None
        if config.scheme == "wgtt":
            if config.sharding_enabled:
                from repro.shard.manager import ShardManager

                tb.shard_manager = ShardManager(tb, self.regions)
            else:
                self._build_single_wgtt(tb)
        else:
            self._build_baseline(tb)

    def _build_single_wgtt(self, tb: "Testbed") -> None:
        tb.controller = WgttController(
            tb.sim, tb.backhaul, tb.rng, self.config.wgtt
        )
        tb.controller.on_uplink = tb._deliver_uplink
        for index, ap_id in enumerate(tb.ap_ids):
            ap = WgttAccessPoint(
                tb.sim,
                tb.medium,
                tb.backhaul,
                tb.rng,
                ap_id,
                self.config.wgtt,
            )
            ap.device.channel = self.config.ap_channel(index)
            ap.device.start_beaconing()
            tb.wgtt_aps[ap_id] = ap
            tb.controller.add_ap(ap_id)

    def _build_baseline(self, tb: "Testbed") -> None:
        tb.wlc = BaselineWlc(tb.sim, tb.backhaul)
        tb.wlc.on_uplink = tb._deliver_uplink
        for index, ap_id in enumerate(tb.ap_ids):
            ap = Baseline80211rAp(
                tb.sim, tb.medium, tb.backhaul, tb.rng, ap_id
            )
            ap.device.channel = self.config.ap_channel(index)
            tb.baseline_aps[ap_id] = ap
            tb.wlc.add_ap(ap_id)

    def build_ha(self, tb: "Testbed") -> None:
        """Warm standby + cluster (opt-in: ``wgtt.ha_enabled``), then
        the multi-channel retune hook.  Sharded deployments build HA
        per shard inside the shard manager instead."""
        config = self.config
        if tb.controller is not None and config.wgtt.ha_enabled:
            from repro.ha.cluster import HaCluster
            from repro.ha.standby import StandbyController

            tb.standby = StandbyController(
                tb.sim,
                tb.backhaul,
                tb.rng,
                config.wgtt,
                controller_id=config.wgtt.standby_id,
                primary_id=tb.controller.controller_id,
            )
            tb.standby.on_uplink = tb._deliver_uplink
            for ap_id in tb.ap_ids:
                tb.standby.add_ap(ap_id)
            tb.ha = HaCluster(
                tb.sim, tb.backhaul, tb.controller, tb.standby, config.wgtt
            )
            tb.ha.start()
        if config.channel_plan is not None and tb.controller is not None:
            tb.controller.on_serving_update = tb._retune_client
            if tb.standby is not None:
                tb.standby.on_serving_update = tb._retune_client

    def build_clients(self, tb: "Testbed") -> None:
        """Client nodes (radio, host stack, keepalives), churn
        bookkeeping, instant association."""
        from repro.scenarios.testbed import ClientNode

        config = self.config
        tb.clients = []
        for index, track in enumerate(self.client_tracks(tb)):
            tb.clients.append(ClientNode(tb, index, track))
        tb._next_client_index = len(tb.clients)
        tb._retiring = {}
        tb.clients_retired = 0
        if config.instant_association:
            for client in tb.clients:
                tb._associate_instantly(client)

    def client_tracks(self, tb: "Testbed") -> List[VehicleTrack]:
        config = self.config
        if config.client_tracks is not None:
            return list(config.client_tracks)
        return [
            VehicleTrack(
                tb.road,
                start_x=config.client_start_x_m,
                speed_mph=speed,
            )
            for speed in config.client_speeds_mph
        ]

    def build_faults(self, tb: "Testbed") -> None:
        """Fault-injection plumbing (armed only when a plan is set)."""
        tb.fault_injector = None
        tb.invariant_checker = None
        if self.config.fault_plan is not None:
            tb.install_fault_plan(self.config.fault_plan)

    def build_recorders(self, tb: "Testbed") -> None:
        """Metrics collectors over every built subsystem."""
        tb._register_obs_collectors()
