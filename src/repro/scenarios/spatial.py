"""Uniform-grid spatial index over AP positions.

The corridor testbed historically found the nearest AP with a linear
``min()`` over *every* AP — fine for 8, pathological for the
city-scale shard corridors where hundreds of APs line the road.  APs
sit (almost) on a line, so a 1-D uniform-grid bucket index over their
x-positions makes nearest-AP queries O(nearby): scan the query
bucket, then widen ring by ring until no unscanned bucket can beat
the best hit.

Correctness contract (the byte-identity one): :meth:`ApGridIndex.nearest`
returns *exactly* the AP the legacy ``min(candidates, key=distance)``
returned — same :meth:`~repro.mobility.road.Position.distance_to`
floats, ties broken by insertion order, which is the legacy iteration
order of ``Testbed.ap_ids``.  The termination bound uses only the
|Δx| component, which never exceeds the full 3-D distance, so it can
never prune the true winner even though APs differ in y/z.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.mobility.road import Position

#: Default bucket width (metres).  At the paper's 7.5 m AP spacing one
#: bucket holds ~3 APs; nearest queries then touch ~1-3 buckets.
DEFAULT_BUCKET_M = 25.0


class ApGridIndex:
    """1-D uniform-grid bucketing of APs by x-position."""

    def __init__(self, bucket_m: float = DEFAULT_BUCKET_M):
        if bucket_m <= 0:
            raise ValueError("bucket_m must be positive")
        self.bucket_m = float(bucket_m)
        #: bucket key -> [(ap_id, position, insertion_order), ...]
        self._buckets: Dict[int, List[Tuple[str, Position, int]]] = {}
        self._count = 0
        self._min_key = 0
        self._max_key = 0
        #: Cumulative nearest() calls (candidate-set cost accounting).
        self.queries = 0
        #: Cumulative candidates whose distance was actually computed.
        self.scanned = 0

    def __len__(self) -> int:
        return self._count

    def _key(self, x: float) -> int:
        return math.floor(x / self.bucket_m)

    def add(self, ap_id: str, position: Position) -> None:
        """Register an AP.  Insertion order is the tie-break order."""
        key = self._key(position.x)
        if self._count == 0:
            self._min_key = self._max_key = key
        else:
            self._min_key = min(self._min_key, key)
            self._max_key = max(self._max_key, key)
        self._buckets.setdefault(key, []).append(
            (ap_id, position, self._count)
        )
        self._count += 1

    def nearest(
        self,
        position: Position,
        predicate: Optional[Callable[[str], bool]] = None,
    ) -> Optional[str]:
        """The AP nearest ``position`` (optionally filtered), or None.

        Identical result to
        ``min(aps, key=lambda ap: ap_position.distance_to(position))``
        over the predicate-passing APs in insertion order.
        """
        if self._count == 0:
            return None
        self.queries += 1
        bucket_m = self.bucket_m
        x = position.x
        center = self._key(x)
        best_dist = math.inf
        best_order = -1
        best_ap: Optional[str] = None
        ring = 0
        while True:
            keys = (center,) if ring == 0 else (center - ring, center + ring)
            for key in keys:
                if key < self._min_key or key > self._max_key:
                    continue
                for ap_id, ap_pos, order in self._buckets.get(key, ()):
                    if predicate is not None and not predicate(ap_id):
                        continue
                    self.scanned += 1
                    dist = ap_pos.distance_to(position)
                    if dist < best_dist or (
                        dist == best_dist and order < best_order
                    ):
                        best_dist, best_order, best_ap = dist, order, ap_id
            ring += 1
            left_in = center - ring >= self._min_key
            right_in = center + ring <= self._max_key
            if not (left_in or right_in):
                break
            if best_ap is not None:
                # Smallest |Δx| any AP in the next ring could have; the
                # 3-D distance is at least that, so once it exceeds the
                # best hit nothing further out can win.
                bounds = []
                if left_in:
                    bounds.append(x - (center - ring + 1) * bucket_m)
                if right_in:
                    bounds.append((center + ring) * bucket_m - x)
                if min(bounds) > best_dist:
                    break
        return best_ap
