"""The roadside testbed (paper §4, Figure 9), fully assembled.

Eight APs behind third-floor windows overlooking a 25 mph side road,
7.5 m apart, each with a 14 dBi / 21° parabolic antenna aimed at the
road; an Ethernet backhaul; a controller (WGTT) or a thin WLC
(Enhanced 802.11r); and one or more vehicular clients. This module
builds the whole thing from a :class:`TestbedConfig` and exposes flow
attachment and run helpers — every experiment driver goes through it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.enhanced_80211r import (
    Baseline80211rAp,
    BaselineWlc,
    RoamingClientAgent,
    RoamingConfig,
)
from repro.channel.antenna import OmniAntenna
from repro.channel.link import ChannelMap, RadioPort
from repro.channel.pathloss import LogDistancePathLoss
from repro.core.access_point import WgttAccessPoint
from repro.core.assoc_sync import StaInfo
from repro.core.config import WgttConfig
from repro.core.controller import WgttController
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mac.medium import WirelessMedium
from repro.mac.wifi_device import WifiDevice
from repro.mobility.road import Position, Road
from repro.mobility.vehicle import VehicleTrack
from repro.net.backhaul import EthernetBackhaul
from repro.net.packet import IpIdAllocator, Packet
from repro.obs.context import ObsConfig, ObsContext
from repro.obs.metrics import metric_key
from repro.shard.config import ShardConfig
from repro.sim.engine import SECOND, Simulator
from repro.sim.rng import RngRegistry
from repro.transport.flows import Host
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.transport.udp import UdpSink, UdpSource

if TYPE_CHECKING:
    from repro.ha.cluster import HaCluster
    from repro.ha.standby import StandbyController
    from repro.scenarios.builder import RegionSpec
    from repro.scenarios.spatial import ApGridIndex
    from repro.shard.manager import ShardManager

#: Default AP x-positions: 7.5 m spacing as measured in §2.
DEFAULT_AP_SPACING_M = 7.5
DEFAULT_FIRST_AP_X = 10.0


@dataclass
class TestbedConfig:
    """Everything needed to instantiate a testbed run."""

    # Not a pytest test class despite the name.
    __test__ = False

    seed: int = 1
    #: "wgtt" or "baseline" (Enhanced 802.11r).
    scheme: str = "wgtt"
    num_aps: int = 8
    #: Explicit AP x-positions override the uniform spacing.
    ap_positions_m: Optional[List[float]] = None
    ap_spacing_m: float = DEFAULT_AP_SPACING_M
    first_ap_x_m: float = DEFAULT_FIRST_AP_X
    ap_setback_m: float = 12.0
    ap_height_m: float = 10.0
    #: Effective beamwidth of the deployed antenna. The Laird panel is
    #: nominally 21°, but the paper's *measured* cell size (5.2 m at a
    #: 7.5 m AP spacing, §2) implies a much narrower effective beam —
    #: the third-floor window aperture clips the lobe. 10° reproduces
    #: the measured footprint and the between-cell ESNR dips of Fig 2.
    ap_beamwidth_deg: float = 10.0
    ap_tx_power_dbm: float = 20.0
    client_tx_power_dbm: float = 15.0
    #: One entry per client. Ignored when ``client_tracks`` is given.
    client_speeds_mph: List[float] = field(default_factory=lambda: [15.0])
    #: Clients start just inside the first AP's coverage flank, the way
    #: the paper's measured transits begin.
    client_start_x_m: float = 4.0
    client_tracks: Optional[List[VehicleTrack]] = None
    wgtt: WgttConfig = field(default_factory=WgttConfig)
    roaming: RoamingConfig = field(default_factory=RoamingConfig)
    pathloss: LogDistancePathLoss = field(default_factory=LogDistancePathLoss)
    coherence_factor: float = 0.25
    rician_k_db: Optional[float] = None
    #: Associate clients instantly at t=0 (experiments assume an
    #: already-admitted commuter device); False exercises the real
    #: over-the-air association path.
    instant_association: bool = True
    #: Clients emit an 802.11 NULL-frame keepalive when their radio has
    #: been silent this long (real stations do this for power
    #: management / presence). These uplink frames are what keeps CSI
    #: flowing to the WGTT controller when transport goes quiet.
    client_keepalive_us: int = 50_000
    #: Wi-Fi channel per AP. None (the paper's deployment) puts every
    #: AP on channel 11. The §7 multi-channel ablation assigns e.g.
    #: [1, 6, 11, 1, 6, 11, ...]; clients retune to their serving AP's
    #: channel on every switch, and cross-channel overhearing — hence
    #: uplink diversity and BA forwarding — disappears.
    channel_plan: Optional[List[int]] = None
    #: Optional chaos schedule (``repro.faults``). When set, a
    #: :class:`FaultInjector` is built and armed at construction, so
    #: the plan's crashes/partitions/jitter fire during the run.
    fault_plan: Optional["FaultPlan"] = None
    #: Observability switches (tracing / detail / profiling).  None
    #: builds the default everything-off context — the configuration
    #: under which runs are bit-identical to the pre-obs tree.
    obs: Optional[ObsConfig] = None
    #: Batched snapshot/PHY fast path on the shared medium and the
    #: oracle probes.  Bit-identical to the scalar path (asserted by
    #: ``tests/test_perf_equivalence.py``); ``False`` forces the
    #: per-receiver scalar loop everywhere.
    batch_phy: bool = True
    #: Partition the corridor into AP-cluster shards, each owned by its
    #: own controller, with inter-shard client handoff (``repro.shard``).
    #: Off (the default) takes the exact legacy single-controller
    #: construction path — runs are bit-identical to the pre-shard tree.
    sharding_enabled: bool = False
    #: Shard-count / handoff-protocol tunables (consulted only when
    #: ``sharding_enabled``).
    shard: ShardConfig = field(default_factory=ShardConfig)

    def ap_channel(self, index: int) -> int:
        if self.channel_plan is None:
            return 11
        return self.channel_plan[index % len(self.channel_plan)]

    def ap_xs(self) -> List[float]:
        """AP x-positions, memoized on the geometry inputs.

        Derived per call historically; at city scale (hundreds of APs,
        consulted by region planning, road sizing and the spatial
        index) the rebuild cost adds up, so the list is cached against
        the fields it derives from and invalidated when they change.
        """
        key = (
            None
            if self.ap_positions_m is None
            else tuple(self.ap_positions_m),
            self.num_aps,
            self.ap_spacing_m,
            self.first_ap_x_m,
        )
        cached: Optional[Tuple[object, Tuple[float, ...]]] = getattr(
            self, "_ap_xs_cache", None
        )
        if cached is not None and cached[0] == key:
            return list(cached[1])
        if self.ap_positions_m is not None:
            xs = list(self.ap_positions_m)
        else:
            xs = [
                self.first_ap_x_m + i * self.ap_spacing_m
                for i in range(self.num_aps)
            ]
        self._ap_xs_cache = (key, tuple(xs))
        return xs

    def road_length_m(self) -> float:
        return self.ap_xs()[-1] + self.first_ap_x_m


class ClientNode:
    """A vehicular client: radio + mobility + host stack."""

    def __init__(
        self,
        testbed: "Testbed",
        index: int,
        track: VehicleTrack,
        client_id: Optional[str] = None,
    ):
        self.client_id = client_id or f"client{index}"
        self.track = track
        self.testbed = testbed
        self.retired = False
        config = testbed.config
        testbed.channel.register_port(
            RadioPort(
                self.client_id,
                OmniAntenna(),
                config.client_tx_power_dbm,
                track.position_at,
                lambda: track.speed_mps,
            )
        )
        self.device = WifiDevice(
            testbed.sim,
            testbed.medium,
            testbed.rng,
            self.client_id,
            role="client",
        )
        self.host = Host(self.client_id)
        self.device.on_packet = lambda packet, src: self.host.deliver(packet)
        self.agent: Optional[RoamingClientAgent] = None
        if config.scheme == "baseline":
            self.agent = RoamingClientAgent(
                testbed.sim, self.device, config.roaming
            )
        self._ip_ids = IpIdAllocator()
        self.uplink_dropped = 0
        self.keepalives_sent = 0
        interval = config.client_keepalive_us
        if interval > 0:
            from repro.sim.engine import Timer

            def keepalive_tick():
                if (
                    testbed.sim.now - self.device.last_tx_us >= interval
                    and not self.device.dcf.busy
                ):
                    null = Packet(
                        src=self.client_id,
                        dst="server",
                        size_bytes=36,
                        protocol="udp",
                        flow_id="keepalive",
                        created_us=testbed.sim.now,
                    )
                    null.meta["keepalive"] = True
                    self.keepalives_sent += 1
                    self.send_uplink(null)
                self._keepalive_timer.start(interval)

            self._keepalive_timer = Timer(testbed.sim, keepalive_tick)
            self._keepalive_timer.start(interval)

    def retire(self) -> None:
        """Stop every self-rearming activity this node owns.

        Without this the keepalive timer reschedules itself forever —
        one leaked timer per departed rider is exactly the unbounded
        growth a churn soak exists to catch.
        """
        self.retired = True
        timer = getattr(self, "_keepalive_timer", None)
        if timer is not None:
            timer.stop()

    def send_uplink(self, packet: Packet) -> None:
        """Hand a locally generated datagram to the radio."""
        packet.ip_id = self._ip_ids.allocate(self.client_id)
        if self.agent is not None:
            peer = self.agent.uplink_peer()
            if peer is None:
                self.uplink_dropped += 1
                return
        else:
            peer = self.testbed.config.wgtt.bssid
        self.device.enqueue(packet, peer)

    def position_x(self) -> float:
        return self.track.position_at(self.testbed.sim.now).x


class Testbed:
    """A fully wired simulation instance.

    Construction is delegated to
    :class:`~repro.scenarios.builder.ScenarioBuilder`, whose stages
    (substrate, AP bank, control plane, HA, clients, faults,
    recorders) run in the legacy constructor order — a default config
    builds the exact same simulation the monolithic ``__init__`` did.
    """

    # Not a pytest test class despite the name.
    __test__ = False

    # Populated by the ScenarioBuilder stages (declared here so the
    # class remains the single place the testbed's surface is listed).
    config: TestbedConfig
    obs: ObsContext
    sim: Simulator
    rng: RngRegistry
    road: Road
    channel: ChannelMap
    medium: WirelessMedium
    backhaul: EthernetBackhaul
    server_host: Host
    _server_ip_ids: IpIdAllocator
    #: Region plan the AP bank was built from (one region per shard;
    #: a single region for the classic deployment).
    regions: List["RegionSpec"]
    ap_ids: List[str]
    ap_positions: Dict[str, Position]
    #: Uniform-grid spatial index every nearest-AP query runs on.
    ap_index: "ApGridIndex"
    controller: Optional[WgttController]
    #: Warm standby + cluster glue (built when wgtt.ha_enabled).
    standby: Optional["StandbyController"]
    ha: Optional["HaCluster"]
    wlc: Optional[BaselineWlc]
    #: Every WGTT AP across all shards (shard-local views live on the
    #: shard manager's :class:`~repro.shard.manager.Shard` objects).
    wgtt_aps: Dict[str, WgttAccessPoint]
    baseline_aps: Dict[str, Baseline80211rAp]
    #: Sharded control plane (``sharding_enabled``); None keeps every
    #: helper on the legacy single-controller path.
    shard_manager: Optional["ShardManager"]
    clients: List[ClientNode]
    _next_client_index: int
    #: Retired ids live here until their deferred radio teardown
    #: fires (see :meth:`retire_client`).
    _retiring: Dict[str, ClientNode]
    clients_retired: int
    fault_injector: Optional[FaultInjector]
    #: Installed by :meth:`install_invariant_checker`; None keeps
    #: the trace stream dormant and the run byte-identical.
    invariant_checker: Optional[object]

    def __init__(self, config: TestbedConfig):
        from repro.scenarios.builder import ScenarioBuilder

        ScenarioBuilder(config).construct_into(self)

    def _retune_client(self, client_id: str, ap_id: str) -> None:
        """Multi-channel ablation glue: a switch retunes the client."""
        index = self.ap_ids.index(ap_id)
        for client in self.clients:
            if client.client_id == client_id:
                client.device.channel = self.config.ap_channel(index)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _register_obs_collectors(self) -> None:
        """Wire the scattered subsystem counters into the metrics
        registry as snapshot-time collectors.

        Collectors read the existing ``stats`` dicts only when a
        snapshot is requested, so the hot paths keep their plain
        ``dict[key] += 1`` increments — zero added cost and zero
        behaviour risk for the bit-identity contract.
        """
        registry = self.obs.metrics
        registry.register_collector(self._collect_backhaul_metrics)
        registry.register_collector(self._collect_medium_metrics)
        registry.register_collector(self._collect_phy_memo_metrics)
        registry.register_collector(self._collect_client_metrics)
        if self.controller is not None:
            registry.register_collector(self._collect_controller_metrics)
            registry.register_collector(self._collect_ap_metrics)
        if self.ha is not None:
            registry.register_collector(self._collect_ha_metrics)
        if self.shard_manager is not None:
            registry.register_collector(self.shard_manager.collect_metrics)

    def _collect_backhaul_metrics(self) -> Dict[str, object]:
        stats = self.backhaul.stats
        out: Dict[str, object] = {
            "backhaul_messages": stats.messages,
            "backhaul_bytes": stats.bytes,
            "backhaul_control_messages": stats.control_messages,
            "backhaul_fault_dropped": stats.fault_dropped,
            "backhaul_loss_dropped": self.backhaul.dropped,
        }
        for kind, count in stats.by_kind.items():
            out[metric_key("backhaul_messages_by_kind", kind=kind)] = count
        if self.backhaul.adversary_armed:
            # Conditional keys: the armed latch only flips once an
            # adversary event executes, so adversary-free runs keep
            # the exact pre-adversary metric key set (fingerprints).
            out["backhaul_adversary_duplicated"] = stats.duplicated
            out["backhaul_adversary_replayed"] = stats.replayed
            out["backhaul_adversary_corrupt_dropped"] = stats.corrupt_dropped
            out["backhaul_adversary_oneway_dropped"] = stats.oneway_dropped
            out["backhaul_adversary_gray_dropped"] = stats.gray_dropped
        return out

    def _collect_medium_metrics(self) -> Dict[str, object]:
        return {
            "medium_frames_sent": self.medium.frames_sent,
            "medium_airtime_us": self.medium.airtime_us,
            "engine_events_processed": self.sim.events_processed,
            "engine_compactions": self.sim.compactions,
        }

    def _collect_phy_memo_metrics(self) -> Dict[str, object]:
        from repro.phy.per import phy_memo_stats

        out: Dict[str, object] = {}
        for memo, stats in phy_memo_stats().items():
            for field_name, value in stats.items():
                out[
                    metric_key("phy_memo", memo=memo, stat=field_name)
                ] = value
        return out

    def _collect_client_metrics(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for client in self.clients:
            cid = client.client_id
            out[metric_key("client_uplink_dropped", client=cid)] = (
                client.uplink_dropped
            )
            out[metric_key("client_keepalives_sent", client=cid)] = (
                client.keepalives_sent
            )
        return out

    #: Stats keys that only move under an adversarial schedule (or an
    #: extreme reordering no stock run produces).  They are exported
    #: only once nonzero, so the metrics snapshot — and therefore every
    #: soak fingerprint — of an adversary-free run is byte-identical to
    #: what it was before the hardening counters existed.
    _LAZY_STATS = frozenset(
        {
            "stale_sta_syncs",
            "stale_serving_claims",
            "stale_stops",
            "stale_starts",
            "stale_failovers",
            "stale_takeovers",
            "stale_ctrl_hellos",
            "stale_serving_updates",
            "stale_warm_updates",
            "serving_relinquished",
            "serving_after_departure",
            "uplink_unowned",
        }
    )

    def _collect_controller_metrics(self) -> Dict[str, object]:
        controller = self.controller
        out: Dict[str, object] = {
            metric_key("controller_stat", name=name): value
            for name, value in controller.stats.items()
            if value or name not in self._LAZY_STATS
        }
        out["dedup_accepted"] = controller.dedup.accepted
        out["dedup_duplicates"] = controller.dedup.duplicates
        out["switches_completed"] = len(controller.coordinator.history)
        out["switches_abandoned"] = controller.coordinator.abandoned
        out["switches_aborted"] = controller.coordinator.aborted
        out["liveness_events"] = len(controller.liveness.events)
        # Convenience top-level aliases the soak SLO guard (and humans
        # reading ``drive --metrics``) watch without knowing the
        # controller_stat{name=...} key scheme.
        out["backpressure_on"] = controller.stats["backpressure_on"]
        out["backpressure_off"] = controller.stats["backpressure_off"]
        # Bounded-memory gauges: each of these must plateau on a soak.
        out["controller_tracked_clients"] = len(controller._clients)
        out["controller_index_cursors"] = (
            controller._index_alloc.tracked_clients()
        )
        out["controller_selector_series"] = controller.selector.series_count()
        out["controller_dedup_window"] = controller.dedup.window_size()
        if controller._pacer is not None:
            out["admission_backlog"] = controller._pacer.backlog()
            out["admission_clients"] = controller._pacer.tracked_clients()
        if self.fault_injector is not None:
            out["faults_executed"] = len(self.fault_injector.events)
            if self.fault_injector.gray_windows:
                out["faults_gray_windows"] = self.fault_injector.gray_windows
        if self.backhaul.adversary_armed:
            # stale_acks moves on ordinary retransmissions too, so it
            # must not surface (new key!) in adversary-free snapshots.
            out["switches_stale_acks"] = controller.coordinator.stale_acks
        return out

    def _collect_ap_metrics(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for ap_id, ap in self.wgtt_aps.items():
            for name, value in ap.stats.items():
                if not value and name in self._LAZY_STATS:
                    continue
                out[metric_key("ap_stat", ap=ap_id, name=name)] = value
            queues = ap._cyclic.values()
            out[metric_key("ap_overflow_drops", ap=ap_id)] = sum(
                queue.overflow_drops for queue in queues
            )
            out[metric_key("ap_cyclic_queues", ap=ap_id)] = len(ap._cyclic)
            out[metric_key("ap_cyclic_high_watermark", ap=ap_id)] = max(
                (queue.high_watermark for queue in queues), default=0
            )
            out[metric_key("ap_cyclic_overwrites", ap=ap_id)] = sum(
                queue.overwrites for queue in queues
            )
            out[metric_key("ap_hold_buffer", ap=ap_id)] = len(ap._hold_buffer)
            device = ap.device.stats
            out[metric_key("ap_mpdus_sent", ap=ap_id)] = device["mpdus_sent"]
            out[metric_key("ap_ba_timeouts", ap=ap_id)] = device["ba_timeouts"]
        return out

    def _collect_ha_metrics(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "ha_checkpoints_shipped": self.ha.checkpoints_shipped,
            "ha_checkpoint_bytes": self.ha.checkpoint_bytes,
            "ha_lost_downlink": self.ha.lost_downlink,
        }
        if self.standby is not None:
            out["ha_promotions"] = self.standby.stats["promotions"]
        return out

    def _nearest_ap(self, client: ClientNode) -> str:
        """Nearest (live, when known) AP — O(nearby) via the spatial
        index; result identical to the legacy linear ``min()`` scan."""
        position = client.track.position_at(self.sim.now)
        if self.wgtt_aps:
            # Mid-run arrivals (churn) must not be homed onto a crashed
            # AP; at t=0 everything is alive and this filter is a no-op.
            live = self.ap_index.nearest(
                position, predicate=lambda ap: self.wgtt_aps[ap].alive
            )
            if live is not None:
                return live
        best = self.ap_index.nearest(position)
        assert best is not None  # the AP bank is never empty
        return best

    def _associate_instantly(self, client: ClientNode) -> None:
        if self.shard_manager is not None:
            self.shard_manager.associate_instantly(client)
            return
        first_ap = self._nearest_ap(client)
        if self.config.scheme == "wgtt":
            info = StaInfo(
                client=client.client_id,
                associated_at_us=self.sim.now,
                first_ap=first_ap,
            )
            for ap in self.wgtt_aps.values():
                if ap.alive:
                    ap.directory.admit(info)
            active = self.active_controller()
            if active is not None and active.alive:
                active.register_association(info)
            # else: controller down mid-arrival — the AP directories
            # admitted above replay the association (sta-sync +
            # serving-claim) during the ctrl-hello resync on restart.
            if self.standby is not None:
                self.standby.directory.admit(info)
            self.wgtt_aps[first_ap].start_serving(client.client_id)
        else:
            agent = client.agent
            agent.current_ap = first_ap
            agent._last_switch_us = self.sim.now
            agent.association_log.append((self.sim.now, first_ap))
            self.wlc._route[client.client_id] = first_ap

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> FaultInjector:
        """Arm a chaos schedule against this testbed (WGTT only)."""
        if self.config.scheme != "wgtt":
            raise ValueError("fault injection targets the WGTT scheme")
        self.fault_injector = FaultInjector(self, plan)
        self.fault_injector.arm()
        return self.fault_injector

    def install_invariant_checker(self, **kwargs):
        """Arm the runtime protocol-invariant checker (WGTT only).

        Subscribing flips the tracer's ``active`` flag, so guarded
        emit sites start producing — protocol behaviour is unchanged
        (emission draws no randomness), but runs are no longer
        trace-dormant.  Keyword arguments forward to
        :class:`~repro.invariants.InvariantChecker`.
        """
        if self.config.scheme != "wgtt":
            raise ValueError("the invariant checker targets the WGTT scheme")
        if self.invariant_checker is not None:
            raise RuntimeError("invariant checker already installed")
        if self.shard_manager is not None:
            from repro.invariants.shard import ShardInvariantChecker

            shard_checker = ShardInvariantChecker(self, **kwargs)
            shard_checker.start()
            self.obs.metrics.register_collector(
                shard_checker.collect_metrics
            )
            self.invariant_checker = shard_checker
            return shard_checker
        from repro.invariants import InvariantChecker

        checker = InvariantChecker(self, **kwargs)
        checker.start()
        self.obs.metrics.register_collector(checker.collect_metrics)
        self.invariant_checker = checker
        return checker

    def crash_ap(self, ap_id: str) -> None:
        """Immediately crash one AP (manual chaos helper)."""
        self.wgtt_aps[ap_id].crash()

    def restart_ap(self, ap_id: str) -> None:
        """Immediately restart a crashed AP."""
        self.wgtt_aps[ap_id].restart()

    def crash_controller(self) -> None:
        """Immediately crash the (primary) controller."""
        self.controller.crash()

    def restart_controller(self) -> None:
        """Immediately restart a crashed controller."""
        self.controller.restart()

    def active_controller(self) -> Optional[WgttController]:
        """The controller currently owning the control plane."""
        if self.ha is not None:
            return self.ha.active_controller()
        return self.controller

    def depart_client(
        self,
        client_index: Optional[int] = None,
        *,
        client_id: Optional[str] = None,
    ) -> None:
        """Deregister a client everywhere (commuter leaves the bus).

        Accepts either a positional index into :attr:`clients` (the
        historical call shape, default 0) or an explicit ``client_id``
        keyword — churn code holds ids, not list positions, because
        positions shift as other clients retire.
        """
        if client_id is None:
            index = 0 if client_index is None else client_index
            client_id = self.clients[index].client_id
        elif client_index is not None:
            raise ValueError("pass client_index or client_id, not both")
        if self.shard_manager is not None:
            self.shard_manager.depart_client(client_id)
            return
        active = self.active_controller()
        if active is not None:
            active.deregister_client(client_id)

    # ------------------------------------------------------------------
    # client churn (soak extension)
    # ------------------------------------------------------------------

    #: How long after retirement the radio port is actually torn down.
    #: The medium replays its recent transmission history (20 ms) for
    #: interference, and in-flight backhaul fan-outs may still name the
    #: client; tearing the port down under them would fault.  50 ms
    #: clears both horizons with margin.
    RETIRE_TEARDOWN_DELAY_US = 50_000

    def client_by_id(self, client_id: str) -> Optional[ClientNode]:
        for client in self.clients:
            if client.client_id == client_id:
                return client
        return None

    def add_client(
        self,
        track: VehicleTrack,
        client_id: Optional[str] = None,
    ) -> ClientNode:
        """Mid-run arrival: a new vehicle enters the road.

        Builds the full client node (radio port, Wi-Fi device, host,
        keepalives) and — under ``instant_association`` — admits it to
        the array exactly like a t=0 client, homed on the nearest
        *live* AP.  Ids must be fresh: the channel map and backhaul
        reject duplicates by design.
        """
        index = self._next_client_index
        self._next_client_index += 1
        client = ClientNode(self, index, track, client_id=client_id)
        self.clients.append(client)
        if self.config.instant_association:
            self._associate_instantly(client)
        return client

    def retire_client(self, client_id: str) -> None:
        """Mid-run departure: tear down one client's local footprint.

        The caller is responsible for protocol-level deregistration
        (:meth:`depart_client`) *before* retiring — this method frees
        the simulation-side resources: keepalive timer, radio power,
        membership in :attr:`clients`, and (deferred past the
        interference-history horizon) the medium registration and the
        channel map's port and links.
        """
        client = self.client_by_id(client_id)
        if client is None:
            return
        client.retire()
        client.device.power_off()
        self.clients.remove(client)
        self._retiring[client_id] = client
        self.clients_retired += 1

        def teardown() -> None:
            self._retiring.pop(client_id, None)
            self.medium.unregister(client_id)
            self.channel.forget_port(client_id)

        self.sim.schedule(self.RETIRE_TEARDOWN_DELAY_US, teardown)

    # ------------------------------------------------------------------
    # traffic plumbing
    # ------------------------------------------------------------------

    def _deliver_uplink(self, packet: Packet) -> None:
        if packet.meta.get("keepalive"):
            return  # NULL frames carry no payload for the server
        tracer = self.sim.obs.trace
        if tracer.active:
            # Post-dedup server ingress: the invariant checker audits
            # this stream for duplicate keys that escaped suppression.
            tracer.emit(
                "testbed",
                "uplink-deliver",
                track="server",
                detail=True,
                key=packet.dedup_key(),
                src=packet.src,
                ip_id=packet.ip_id,
                protocol=packet.protocol,
            )
        self.sim.schedule(
            self.config.wgtt.server_latency_us,
            lambda: self.server_host.deliver(packet),
        )

    def send_downlink(self, packet: Packet) -> None:
        """Server-side ingress: tag IP-ID, add server latency, route."""
        packet.ip_id = self._server_ip_ids.allocate(packet.src)
        if self.shard_manager is not None:
            ingress = self.shard_manager.accept_downlink
        elif self.ha is not None:
            ingress = self.ha.accept_downlink
        elif self.controller is not None:
            ingress = self.controller.accept_downlink
        else:
            ingress = self.wlc.accept_downlink
        self.sim.schedule(
            self.config.wgtt.server_latency_us, lambda: ingress(packet)
        )

    def client(self, index: int) -> ClientNode:
        return self.clients[index]

    def add_downlink_tcp_flow(
        self, client_index: int = 0, flow_id: Optional[str] = None
    ) -> Tuple[TcpSender, TcpReceiver]:
        client = self.clients[client_index]
        flow_id = flow_id or f"tcp-dl-{client.client_id}"
        sender = TcpSender(
            self.sim, "server", client.client_id, self.send_downlink, flow_id
        )
        receiver = TcpReceiver(
            self.sim, client.client_id, "server", client.send_uplink, flow_id
        )
        self.server_host.attach_tcp_sender(sender)
        client.host.attach_tcp_receiver(receiver)
        return sender, receiver

    def add_uplink_tcp_flow(
        self, client_index: int = 0, flow_id: Optional[str] = None
    ) -> Tuple[TcpSender, TcpReceiver]:
        client = self.clients[client_index]
        flow_id = flow_id or f"tcp-ul-{client.client_id}"
        sender = TcpSender(
            self.sim, client.client_id, "server", client.send_uplink, flow_id
        )
        receiver = TcpReceiver(
            self.sim, "server", client.client_id, self.send_downlink, flow_id
        )
        client.host.attach_tcp_sender(sender)
        self.server_host.attach_tcp_receiver(receiver)
        return sender, receiver

    def add_downlink_udp_flow(
        self,
        client_index: int = 0,
        rate_bps: float = 15e6,
        flow_id: Optional[str] = None,
    ) -> Tuple[UdpSource, UdpSink]:
        client = self.clients[client_index]
        flow_id = flow_id or f"udp-dl-{client.client_id}"
        source = UdpSource(
            self.sim,
            "server",
            client.client_id,
            rate_bps,
            self.send_downlink,
            flow_id,
        )
        sink = UdpSink(self.sim, flow_id)
        client.host.attach_udp_sink(sink)
        return source, sink

    def add_uplink_udp_flow(
        self,
        client_index: int = 0,
        rate_bps: float = 15e6,
        flow_id: Optional[str] = None,
    ) -> Tuple[UdpSource, UdpSink]:
        client = self.clients[client_index]
        flow_id = flow_id or f"udp-ul-{client.client_id}"
        source = UdpSource(
            self.sim,
            client.client_id,
            "server",
            rate_bps,
            client.send_uplink,
            flow_id,
        )
        sink = UdpSink(self.sim, flow_id)
        self.server_host.attach_udp_sink(sink)
        return source, sink

    # ------------------------------------------------------------------
    # running and ground truth
    # ------------------------------------------------------------------

    def run_seconds(self, seconds: float) -> None:
        self.sim.run(until_us=self.sim.now + int(seconds * SECOND))

    def run_until(self, time_us: int) -> None:
        self.sim.run(until_us=time_us)

    def transit_duration_us(self, client_index: int = 0) -> int:
        return self.clients[client_index].track.transit_duration_us()

    def best_ap_ground_truth(self, client_index: int, time_us: int) -> str:
        """The AP with the instantaneously best ESNR (oracle knowledge,
        used only by the accuracy metric — never by the protocols)."""
        client_id = self.clients[client_index].client_id
        if self.config.batch_phy:
            from repro.channel.link_batch import probe_snapshots
            from repro.phy.batch import effective_snr_db_batch

            entries = [
                (self.channel.link(ap_id, client_id), ap_id)
                for ap_id in self.ap_ids
            ]
            snaps = probe_snapshots(time_us, entries)
            esnrs = effective_snr_db_batch(np.stack(snaps))
            best_ap, best_esnr = None, -1e9
            for ap_id, esnr in zip(self.ap_ids, esnrs):
                if esnr > best_esnr:
                    best_ap, best_esnr = ap_id, float(esnr)
            return best_ap
        from repro.phy.esnr import effective_snr_db

        best_ap, best_esnr = None, -1e9
        for ap_id in self.ap_ids:
            link = self.channel.link(ap_id, client_id)
            esnr = effective_snr_db(
                link.probe_subcarrier_snr_db(time_us, tx_id=ap_id)
            )
            if esnr > best_esnr:
                best_ap, best_esnr = ap_id, esnr
        return best_ap

    def serving_ap_of(self, client_index: int) -> Optional[str]:
        client_id = self.clients[client_index].client_id
        if self.shard_manager is not None:
            return self.shard_manager.serving_ap(client_id)
        if self.controller is not None:
            active = self.active_controller() or self.controller
            return active.serving_ap(client_id)
        agent = self.clients[client_index].agent
        return agent.current_ap if agent else None


def build_testbed(config: TestbedConfig) -> Testbed:
    """Deprecated construction shim.

    Construction now flows through
    :class:`~repro.scenarios.builder.ScenarioBuilder` (``Testbed(config)``
    delegates to it); this wrapper survives so the historical call
    sites keep working, but new code should construct ``Testbed`` (or
    a ``ScenarioBuilder``) directly.
    """
    warnings.warn(
        "repro.scenarios.build_testbed is deprecated; construct "
        "Testbed(config) directly or use "
        "repro.scenarios.builder.ScenarioBuilder",
        DeprecationWarning,
        stacklevel=2,
    )
    return Testbed(config)
