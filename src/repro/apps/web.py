"""Web page loading (paper Table 5).

The case study loads the eBay homepage (2.1 MB, served locally) while
driving past the array and measures browser-start to fully-loaded.
A browser is modelled as six parallel persistent connections splitting
the page's objects; the page is loaded when every connection has
delivered its share. A load that does not finish within the transit is
reported as infinite, as in the paper.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.scenarios.testbed import Testbed
from repro.sim.engine import SECOND
from repro.transport.tcp import MSS

#: eBay homepage weight in the paper's measurement.
PAGE_BYTES = 2_100_000
#: Parallel persistent connections a browser opens per origin.
PARALLEL_CONNECTIONS = 6


class PageLoad:
    """One page fetch over several parallel app-limited TCP flows."""

    def __init__(
        self,
        testbed: Testbed,
        client_index: int = 0,
        page_bytes: int = PAGE_BYTES,
        connections: int = PARALLEL_CONNECTIONS,
    ):
        self._testbed = testbed
        self._sim = testbed.sim
        self.page_bytes = page_bytes
        self.started_us = testbed.sim.now
        self.finished_us: Optional[int] = None
        self._flows: List[dict] = []
        total_segments = math.ceil(page_bytes / MSS)
        per_connection = math.ceil(total_segments / connections)
        for i in range(connections):
            share = min(per_connection, total_segments - i * per_connection)
            if share <= 0:
                break
            flow_id = f"web-{client_index}-{i}-{self.started_us}"
            sender, receiver = testbed.add_downlink_tcp_flow(
                client_index, flow_id=flow_id
            )
            sender._bulk = False
            sender.supply(share)
            state = {"sender": sender, "receiver": receiver, "share": share}
            self._flows.append(state)
            receiver.on_deliver = self._make_on_deliver(state)

    def _make_on_deliver(self, state: dict):
        def on_deliver(segments: int) -> None:
            if state["receiver"].rcv_nxt >= state["share"]:
                self._check_complete()

        return on_deliver

    def _check_complete(self) -> None:
        if self.finished_us is not None:
            return
        if all(f["receiver"].rcv_nxt >= f["share"] for f in self._flows):
            self.finished_us = self._sim.now

    @property
    def complete(self) -> bool:
        return self.finished_us is not None

    def load_time_s(self) -> float:
        """Seconds to full load, or infinity if never completed."""
        if self.finished_us is None:
            return float("inf")
        return (self.finished_us - self.started_us) / SECOND

    def bytes_delivered(self) -> int:
        return sum(
            min(f["receiver"].rcv_nxt, f["share"]) * MSS for f in self._flows
        )
