"""Two-party video conferencing (paper Figure 24).

The case study runs Skype and Google Hangouts between a vehicular
client and a conference room, reporting the CDF of delivered frames per
second. The two products differ in exactly one modelled respect the
paper calls out: Hangouts *reduces per-frame resolution* under loss, so
more (smaller) frames survive, while Skype keeps resolution and loses
whole frames.

Frames are fragmented into UDP datagrams; a frame counts as delivered
in the second its last fragment arrives, provided every fragment made
it within the playout deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.net.packet import Packet
from repro.sim.engine import MS, SECOND, Simulator, Timer

#: Fragment payload size (RTP over UDP).
FRAGMENT_BYTES = 1200
#: A frame missing fragments after this long is discarded.
PLAYOUT_DEADLINE_US = 150 * MS


@dataclass
class CodecProfile:
    """What the sending application does each frame interval."""

    name: str
    target_fps: int
    frame_bytes: int
    #: Adaptive resolution: shrink frames under loss (Hangouts-style).
    adaptive: bool
    min_frame_bytes: int = 1_000


SKYPE = CodecProfile(name="skype", target_fps=30, frame_bytes=6_000, adaptive=False)
HANGOUTS = CodecProfile(
    name="hangouts", target_fps=60, frame_bytes=2_400, adaptive=True
)


class ConferencingSender:
    """Sends one direction of the call: frames at the codec cadence."""

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        send_fn: Callable[[Packet], None],
        codec: CodecProfile,
        flow_id: str,
    ):
        self._sim = sim
        self.src, self.dst = src, dst
        self._send_fn = send_fn
        self.codec = codec
        self.flow_id = flow_id
        self._frame_bytes = codec.frame_bytes
        self._frame_id = 0
        self.frames_sent = 0
        self._interval = SECOND // codec.target_fps
        self._timer = Timer(sim, self._emit_frame)
        self._adapt_timer = Timer(sim, self._adapt)
        self._running = False
        #: Receiver-reported delivery fraction over the last second.
        self.reported_delivery = 1.0

    def start(self) -> None:
        self._running = True
        self._timer.start(self._interval)
        if self.codec.adaptive:
            self._adapt_timer.start(SECOND)

    def stop(self) -> None:
        self._running = False
        self._timer.stop()
        self._adapt_timer.stop()

    def _emit_frame(self) -> None:
        if not self._running:
            return
        fragments = max(1, -(-self._frame_bytes // FRAGMENT_BYTES))
        for i in range(fragments):
            packet = Packet(
                src=self.src,
                dst=self.dst,
                size_bytes=min(FRAGMENT_BYTES, self._frame_bytes) + 40,
                protocol="udp",
                flow_id=self.flow_id,
                seq=self._frame_id * 64 + i,
                created_us=self._sim.now,
            )
            packet.meta["frame_id"] = self._frame_id
            packet.meta["fragment"] = i
            packet.meta["fragments"] = fragments
            self._send_fn(packet)
        self._frame_id += 1
        self.frames_sent += 1
        self._timer.start(self._interval)

    def _adapt(self) -> None:
        """Hangouts-style resolution adaptation on receiver feedback."""
        if self.reported_delivery < 0.95:
            self._frame_bytes = max(
                self.codec.min_frame_bytes, int(self._frame_bytes * 0.6)
            )
        elif self.reported_delivery > 0.99:
            self._frame_bytes = min(
                self.codec.frame_bytes, int(self._frame_bytes * 1.25)
            )
        self._adapt_timer.start(SECOND)


class ConferencingReceiver:
    """Reassembles frames and tallies delivered frames per second."""

    def __init__(self, sim: Simulator, flow_id: str, sender: ConferencingSender):
        self._sim = sim
        self.flow_id = flow_id
        self._sender = sender
        self._partial: Dict[int, Dict] = {}
        self._per_second: Dict[int, int] = {}
        self.frames_delivered = 0
        self._last_feedback_frames = 0
        self._feedback_timer = Timer(sim, self._feedback)
        self._feedback_timer.start(SECOND)

    def on_packet(self, packet: Packet) -> None:
        frame_id = packet.meta["frame_id"]
        fragments = packet.meta["fragments"]
        state = self._partial.get(frame_id)
        if state is None:
            state = {"got": set(), "first_us": self._sim.now}
            self._partial[frame_id] = state
        if self._sim.now - state["first_us"] > PLAYOUT_DEADLINE_US:
            return  # frame already missed its playout slot
        state["got"].add(packet.meta["fragment"])
        if len(state["got"]) == fragments:
            del self._partial[frame_id]
            self.frames_delivered += 1
            second = self._sim.now // SECOND
            self._per_second[second] = self._per_second.get(second, 0) + 1
        self._gc()

    def _gc(self) -> None:
        if len(self._partial) < 256:
            return
        cutoff = self._sim.now - 2 * PLAYOUT_DEADLINE_US
        stale = [f for f, s in self._partial.items() if s["first_us"] < cutoff]
        for frame_id in stale:
            del self._partial[frame_id]

    def _feedback(self) -> None:
        """Report last-second delivery fraction back to the sender
        (models RTCP receiver reports driving the codec)."""
        sent = self._sender.frames_sent
        delivered = self.frames_delivered
        interval_sent = sent - getattr(self, "_last_sent", 0)
        interval_delivered = delivered - self._last_feedback_frames
        self._last_sent = sent
        self._last_feedback_frames = delivered
        if interval_sent > 0:
            self._sender.reported_delivery = interval_delivered / interval_sent
        self._feedback_timer.start(SECOND)

    def fps_series(self) -> List[int]:
        """Delivered frames per wall-clock second, in order."""
        if not self._per_second:
            return []
        seconds = range(min(self._per_second), max(self._per_second) + 1)
        return [self._per_second.get(s, 0) for s in seconds]
