"""Application workloads: bulk transfer, video, conferencing, web."""

from repro.apps.bulk import BulkResult, run_bulk_download
from repro.apps.conferencing import (
    HANGOUTS,
    SKYPE,
    CodecProfile,
    ConferencingReceiver,
    ConferencingSender,
)
from repro.apps.video import HD_BITRATE_BPS, PREBUFFER_US, VideoPlayer
from repro.apps.web import PAGE_BYTES, PageLoad

__all__ = [
    "BulkResult",
    "run_bulk_download",
    "HANGOUTS",
    "SKYPE",
    "CodecProfile",
    "ConferencingReceiver",
    "ConferencingSender",
    "HD_BITRATE_BPS",
    "PREBUFFER_US",
    "VideoPlayer",
    "PAGE_BYTES",
    "PageLoad",
]
