"""Online video streaming with a rebuffering model (paper Table 4).

The paper's case study streams a locally cached 720p HD video over the
testbed with VLC (progressive download over FTP — i.e. a bulk TCP flow)
and a 1,500 ms pre-buffer, reporting the *rebuffer ratio*: the fraction
of the transit spent stalled. This module models the player: bytes
arriving over a TCP flow fill a playback buffer; playback drains it at
the video bitrate; hitting empty stalls playback until the pre-buffer
refills.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.engine import MS, SECOND, Simulator, Timer
from repro.transport.tcp import TcpReceiver

#: 1280x720 stream at a typical H.264 rate.
HD_BITRATE_BPS = 3_000_000
#: Pre-buffer before playback starts / resumes (paper: 1,500 ms).
PREBUFFER_US = 1_500 * MS
#: Player clock tick.
_TICK_US = 50 * MS


class VideoPlayer:
    """Playback-buffer state machine fed by a TCP receiver."""

    def __init__(
        self,
        sim: Simulator,
        receiver: TcpReceiver,
        bitrate_bps: float = HD_BITRATE_BPS,
        prebuffer_us: int = PREBUFFER_US,
    ):
        self._sim = sim
        self._receiver = receiver
        self.bitrate_bps = bitrate_bps
        self.prebuffer_us = prebuffer_us
        self._buffered_media_us = 0.0
        self._playing = False
        self._started_us = sim.now
        self._stall_started_us: int = sim.now
        self.rebuffer_events: List[Tuple[int, int]] = []  # (start, end)
        self.total_stall_us = 0
        self._stopped = False
        self.playback_us = 0.0
        receiver.on_deliver = self._on_segments
        self._timer = Timer(sim, self._tick)
        self._timer.start(_TICK_US)

    # -- data arrival ---------------------------------------------------

    def _on_segments(self, segments: int) -> None:
        from repro.transport.tcp import MSS

        media_us = segments * MSS * 8 / self.bitrate_bps * SECOND
        self._buffered_media_us += media_us

    # -- playback clock ---------------------------------------------------

    def _tick(self) -> None:
        if self._playing:
            if self._buffered_media_us >= _TICK_US:
                self._buffered_media_us -= _TICK_US
                self.playback_us += _TICK_US
            else:
                # Buffer ran dry: a rebuffer event begins.
                self._playing = False
                self._stall_started_us = self._sim.now
        else:
            if self._buffered_media_us >= self.prebuffer_us:
                self._playing = True
                stall = self._sim.now - self._stall_started_us
                self.total_stall_us += stall
                self.rebuffer_events.append(
                    (self._stall_started_us, self._sim.now)
                )
        self._timer.start(_TICK_US)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._timer.stop()
        if not self._playing:
            self.total_stall_us += self._sim.now - self._stall_started_us

    # -- metrics -----------------------------------------------------------

    def rebuffer_ratio(self, transit_duration_us: int) -> float:
        """Stall time over the transit, net of a startup allowance.

        Filling the pre-buffer at the nominal bitrate takes
        ``prebuffer_us``; a healthy link needs little more than that
        before playback starts, so the startup allowance is the actual
        first-start delay capped at twice the pre-buffer. Everything
        else spent not playing — including a stream that *never*
        manages to start — counts as stalled.
        """
        if transit_duration_us <= 0:
            return 0.0
        allowance_cap = 2 * self.prebuffer_us
        if self.rebuffer_events:
            first_start_delay = self.rebuffer_events[0][1] - self._started_us
            startup_allowance = min(first_start_delay, allowance_cap)
        else:
            startup_allowance = allowance_cap
        not_playing = self.total_stall_us
        if not self._playing and not self._stopped:
            not_playing += self._sim.now - self._stall_started_us
        stalled = max(0, not_playing - startup_allowance)
        return min(1.0, stalled / transit_duration_us)

    @property
    def rebuffer_count(self) -> int:
        return max(0, len(self.rebuffer_events) - 1)

    @property
    def playing(self) -> bool:
        return self._playing
