"""Bulk-transfer workloads: the iperf3-style flows of §5.2.

These helpers wrap testbed + flow construction for the common
"drive past the array with a saturating flow" experiment, returning the
measurements every evaluation figure needs (throughput, timeseries,
switch counts). All the end-to-end benches build on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.scenarios.testbed import Testbed, TestbedConfig
from repro.sim.engine import SECOND


@dataclass
class BulkResult:
    """Outcome of one bulk-transfer drive."""

    scheme: str
    protocol: str
    speed_mph: float
    duration_s: float
    throughput_mbps: float
    goodput_series_mbps: List[float]
    tcp_timeouts: int = 0
    switch_count: int = 0
    testbed: Optional[Testbed] = field(default=None, repr=False)


def run_bulk_download(
    config: TestbedConfig,
    protocol: str = "tcp",
    duration_s: Optional[float] = None,
    udp_rate_bps: float = 50e6,
    client_index: int = 0,
    keep_testbed: bool = False,
) -> BulkResult:
    """Drive one client past the array with a saturating downlink flow.

    ``duration_s`` defaults to the client's transit time across the
    modelled road (capped at 40 s so very slow drives stay tractable).
    """
    testbed = Testbed(config)
    if duration_s is None:
        try:
            duration_s = min(
                testbed.transit_duration_us(client_index) / SECOND, 40.0
            )
        except ValueError:  # static client
            duration_s = 10.0
    if protocol == "tcp":
        sender, receiver = testbed.add_downlink_tcp_flow(client_index)
        sender.start()
        testbed.run_seconds(duration_s)
        throughput = sender.throughput_mbps(testbed.sim.now)
        series = receiver.goodput_series_mbps(testbed.sim.now)
        timeouts = sender.timeouts
    elif protocol == "udp":
        source, sink = testbed.add_downlink_udp_flow(
            client_index, rate_bps=udp_rate_bps
        )
        source.start()
        testbed.run_seconds(duration_s)
        throughput = sink.bytes_received() * 8 / duration_s / 1e6
        series = sink.throughput_series_mbps(testbed.sim.now)
        timeouts = 0
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    switch_count = 0
    if testbed.shard_manager is not None:
        switch_count = sum(
            len(shard.controller.coordinator.history)
            for shard in testbed.shard_manager.shards
        )
    elif testbed.controller is not None:
        switch_count = len(testbed.controller.coordinator.history)
    else:
        agent = testbed.clients[client_index].agent
        switch_count = max(0, len(agent.association_log) - 1)
    return BulkResult(
        scheme=config.scheme,
        protocol=protocol,
        speed_mph=config.client_speeds_mph[client_index]
        if config.client_tracks is None
        else testbed.clients[client_index].track.speed_mph,
        duration_s=duration_s,
        throughput_mbps=throughput,
        goodput_series_mbps=series,
        tcp_timeouts=timeouts,
        switch_count=switch_count,
        testbed=testbed if keep_testbed else None,
    )
