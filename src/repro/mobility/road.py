"""Road geometry for the roadside-testbed scenarios.

The testbed road is modelled as a straight segment along the x axis.
Lanes run parallel to it at fixed lateral (y) offsets; the AP array sits
on the building side at a configurable setback and mounting height
(third floor in the paper's deployment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: Conversion used throughout: the paper quotes all speeds in mph.
MPH_TO_MPS = 0.44704


@dataclass(frozen=True)
class Position:
    """A point in the scenario's 3-D coordinate frame (metres)."""

    x: float
    y: float
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.sqrt(
            (self.x - other.x) ** 2
            + (self.y - other.y) ** 2
            + (self.z - other.z) ** 2
        )

    def bearing_to(self, other: "Position") -> Tuple[float, float]:
        """(azimuth, elevation) in radians from this point towards ``other``.

        Azimuth is measured in the x-y plane from the +x axis;
        elevation from the horizontal plane.
        """
        dx = other.x - self.x
        dy = other.y - self.y
        dz = other.z - self.z
        azimuth = math.atan2(dy, dx)
        horizontal = math.sqrt(dx * dx + dy * dy)
        elevation = math.atan2(dz, horizontal) if horizontal or dz else 0.0
        return azimuth, elevation


@dataclass(frozen=True)
class Road:
    """A straight road segment with one lane per travel direction.

    ``near_lane_y`` is the lane closest to the AP array (traffic in the
    +x direction); ``far_lane_y`` carries opposing (-x) traffic. These
    mirror the paper's side road: two lanes, speed limit 25 mph.
    """

    length_m: float = 80.0
    near_lane_y: float = 0.0
    far_lane_y: float = 3.5
    speed_limit_mph: float = 25.0

    def lane_y(self, direction: int) -> float:
        """Lateral offset of the lane for ``direction`` (+1 or -1)."""
        if direction >= 0:
            return self.near_lane_y
        return self.far_lane_y

    def contains_x(self, x: float) -> bool:
        """True while an x coordinate lies within the modelled segment."""
        return 0.0 <= x <= self.length_m


def mph(speed_mph: float) -> float:
    """Convert a speed in miles per hour to metres per second."""
    return speed_mph * MPH_TO_MPS
