"""Vehicle (client) mobility models.

The paper's experiments drive clients past the AP array at constant
speeds from 0 (static) to 35 mph, alone or in small groups (following
at 3 m spacing, parallel in adjacent lanes, or in opposing directions).
A :class:`VehicleTrack` answers "where is this client at time t?" —
the channel model samples it lazily, so no per-tick events are needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mobility.road import MPH_TO_MPS, Position, Road
from repro.sim.engine import SECOND


@dataclass
class VehicleTrack:
    """Constant-velocity motion along the road.

    Parameters
    ----------
    start_x:
        Position along the road (metres) at ``start_time_us``.
    speed_mph:
        Constant speed; zero models the parked/static client.
    direction:
        +1 drives towards increasing x (near lane), -1 the opposite way
        (far lane). The lane's lateral offset comes from the road.
    antenna_height_m:
        Height of the client's antenna above the road surface.
    """

    road: Road
    start_x: float
    speed_mph: float
    direction: int = 1
    start_time_us: int = 0
    antenna_height_m: float = 1.5

    def __post_init__(self) -> None:
        if self.direction not in (-1, 1):
            raise ValueError("direction must be +1 or -1")
        if self.speed_mph < 0:
            raise ValueError("speed must be non-negative")

    @property
    def speed_mps(self) -> float:
        """Speed in metres per second."""
        return self.speed_mph * MPH_TO_MPS

    def position_at(self, time_us: int) -> Position:
        """Client position at an absolute simulation time."""
        elapsed_s = (time_us - self.start_time_us) / SECOND
        x = self.start_x + self.direction * self.speed_mps * elapsed_s
        return Position(x, self.road.lane_y(self.direction), self.antenna_height_m)

    def time_to_reach_x(self, x: float) -> int:
        """Absolute time (us) at which the client passes coordinate ``x``.

        Raises ``ValueError`` for a static client or a coordinate behind
        the direction of travel.
        """
        if self.speed_mph == 0:
            raise ValueError("static client never moves")
        distance = (x - self.start_x) * self.direction
        if distance < 0:
            raise ValueError(f"x={x} is behind the direction of travel")
        return self.start_time_us + int(distance / self.speed_mps * SECOND)

    def transit_duration_us(self) -> int:
        """Time to traverse the full modelled road segment."""
        if self.speed_mph == 0:
            raise ValueError("static client has no transit duration")
        return int(self.road.length_m / self.speed_mps * SECOND)


def following_tracks(
    road: Road, speed_mph: float, count: int, spacing_m: float = 3.0
) -> list:
    """Clients driving in a line, ``spacing_m`` apart (paper Fig 19a)."""
    return [
        VehicleTrack(road, start_x=-i * spacing_m, speed_mph=speed_mph, direction=1)
        for i in range(count)
    ]


def parallel_tracks(road: Road, speed_mph: float) -> list:
    """Two clients abreast in adjacent lanes (paper Fig 19b).

    Both travel in +x so they stay side by side; the second uses the far
    lane's lateral offset via direction=-1 geometry, so we construct it
    explicitly on the far lane but still moving in +x.
    """
    near = VehicleTrack(road, start_x=0.0, speed_mph=speed_mph, direction=1)
    far = VehicleTrack(road, start_x=0.0, speed_mph=speed_mph, direction=1)
    # Same heading, far lane: override the lane lookup via a shifted road.
    far_road = Road(
        length_m=road.length_m,
        near_lane_y=road.far_lane_y,
        far_lane_y=road.near_lane_y,
        speed_limit_mph=road.speed_limit_mph,
    )
    far.road = far_road
    return [near, far]


def opposing_tracks(road: Road, speed_mph: float) -> list:
    """Two clients passing in opposite directions (paper Fig 19c)."""
    towards = VehicleTrack(road, start_x=0.0, speed_mph=speed_mph, direction=1)
    away = VehicleTrack(
        road, start_x=road.length_m, speed_mph=speed_mph, direction=-1
    )
    return [towards, away]
