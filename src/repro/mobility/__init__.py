"""Road geometry and vehicular client mobility."""

from repro.mobility.road import MPH_TO_MPS, Position, Road, mph
from repro.mobility.vehicle import (
    VehicleTrack,
    following_tracks,
    opposing_tracks,
    parallel_tracks,
)

__all__ = [
    "MPH_TO_MPS",
    "Position",
    "Road",
    "mph",
    "VehicleTrack",
    "following_tracks",
    "opposing_tracks",
    "parallel_tracks",
]
