"""Declarative, seed-reproducible fault schedules.

A :class:`FaultPlan` is a plain container of fault *events* — frozen
dataclasses describing **what** goes wrong and **when** (all times in
integer sim microseconds).  Plans are data: they can be written by
hand for unit rigs, or drawn from named :class:`~repro.sim.rng.RngRegistry`
streams via :meth:`FaultPlan.random` for chaos sweeps.  Either way the
plan is fully determined before the simulation starts; the injector
(:mod:`repro.faults.injector`) never draws randomness at execution
time, which is what makes two runs of the same ``(seed, plan)`` pair
byte-identical.

Event types
-----------

``ApCrash``
    AP ``ap_id`` crashes at ``at_us`` (radio off, backhaul endpoint
    silent, cyclic queues flushed) and — unless ``down_us`` is ``None``
    — restarts ``down_us`` later, announcing itself to the controller.

``Partition``
    The backhaul is partitioned between endpoint sets ``side_a`` and
    ``side_b`` at ``at_us`` and healed ``duration_us`` later.

``LinkJitter``
    Messages on the directed backhaul link ``src -> dst`` pick up a
    uniform extra delay in ``[0, jitter_us]`` for ``duration_us``,
    which reorders control traffic (the jitter draws come from a named
    stream recorded in the plan so they, too, are reproducible).

``CsiBlackout``
    AP ``ap_id`` stops producing CSI reports for ``duration_us`` —
    the controller's view of that cell goes stale without the AP
    itself failing.

``ControllerCrash``
    The controller process dies at ``at_us`` (volatile state lost,
    backhaul endpoint dark) and — unless ``down_us`` is ``None`` —
    restarts ``down_us`` later.  With an HA cluster armed the warm
    standby detects the silence and promotes itself; without one the
    restarted controller resyncs cold via ``ctrl-hello``.

``ControllerRestart``
    Explicitly restart a (crashed) controller at ``at_us`` — for plans
    that separate the crash and the repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.sim.rng import RngRegistry

#: Union of every fault-event type a plan may hold.
FaultEvent = Union[
    "ApCrash",
    "Partition",
    "LinkJitter",
    "CsiBlackout",
    "ControllerCrash",
    "ControllerRestart",
]


@dataclass(frozen=True)
class ApCrash:
    """AP ``ap_id`` crashes at ``at_us``; restarts after ``down_us``."""

    at_us: int
    ap_id: str
    #: Downtime before restart; ``None`` means the AP never comes back.
    down_us: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.down_us is not None and self.down_us <= 0:
            raise ValueError("down_us must be positive (or None)")


@dataclass(frozen=True)
class Partition:
    """Backhaul partition between ``side_a`` and ``side_b``."""

    at_us: int
    duration_us: int
    side_a: FrozenSet[str]
    side_b: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        object.__setattr__(self, "side_a", frozenset(self.side_a))
        object.__setattr__(self, "side_b", frozenset(self.side_b))
        if self.side_a & self.side_b:
            raise ValueError("partition sides must be disjoint")


@dataclass(frozen=True)
class LinkJitter:
    """Uniform [0, jitter_us] extra delay on directed link src->dst."""

    at_us: int
    duration_us: int
    src: str
    dst: str
    jitter_us: int

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.jitter_us <= 0:
            raise ValueError("jitter_us must be positive")


@dataclass(frozen=True)
class CsiBlackout:
    """AP ``ap_id`` suppresses CSI reports for ``duration_us``."""

    at_us: int
    duration_us: int
    ap_id: str

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")


@dataclass(frozen=True)
class ControllerCrash:
    """Controller ``controller_id`` crashes at ``at_us``."""

    at_us: int
    controller_id: str = "controller"
    #: Downtime before restart; ``None`` means it never comes back
    #: unaided (an HA standby may still take over).
    down_us: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.down_us is not None and self.down_us <= 0:
            raise ValueError("down_us must be positive (or None)")


@dataclass(frozen=True)
class ControllerRestart:
    """Restart a crashed controller at ``at_us``."""

    at_us: int
    controller_id: str = "controller"

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")


def _sort_key(event: FaultEvent) -> Tuple[int, int, str]:
    """Deterministic total order: time, then type rank, then identity."""
    rank = {
        ApCrash: 0,
        Partition: 1,
        LinkJitter: 2,
        CsiBlackout: 3,
        ControllerCrash: 4,
        ControllerRestart: 5,
    }
    if isinstance(event, ApCrash):
        ident = event.ap_id
    elif isinstance(event, Partition):
        ident = ",".join(sorted(event.side_a)) + "|" + ",".join(sorted(event.side_b))
    elif isinstance(event, LinkJitter):
        ident = f"{event.src}->{event.dst}"
    elif isinstance(event, (ControllerCrash, ControllerRestart)):
        ident = event.controller_id
    else:
        ident = event.ap_id
    return (event.at_us, rank[type(event)], ident)


@dataclass
class FaultPlan:
    """An ordered, immutable-in-spirit schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=_sort_key)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Insert ``event`` keeping the schedule sorted; returns self."""
        self.events.append(event)
        self.events.sort(key=_sort_key)
        return self

    @classmethod
    def random(
        cls,
        rng: RngRegistry,
        ap_ids: Sequence[str],
        duration_us: int,
        *,
        crash_rate_per_s: float = 0.0,
        crash_down_us: int = 500_000,
        partition_rate_per_s: float = 0.0,
        partition_duration_us: int = 200_000,
        jitter_rate_per_s: float = 0.0,
        jitter_us: int = 5_000,
        jitter_duration_us: int = 500_000,
        csi_blackout_rate_per_s: float = 0.0,
        csi_blackout_duration_us: int = 500_000,
        controller_crash_rate_per_s: float = 0.0,
        controller_crash_down_us: Optional[int] = 1_000_000,
        controller_id: str = "controller",
    ) -> "FaultPlan":
        """Draw a plan from named rng streams (``faults/...``).

        Each fault family arrives as a Poisson process with the given
        per-second rate over ``[0, duration_us)``.  All draws come from
        streams named for the family, so changing one rate never
        perturbs the draws of another family, and identical
        ``(seed, rates)`` pairs yield identical plans.
        """
        if duration_us <= 0:
            raise ValueError("duration_us must be positive")
        ap_ids = list(ap_ids)
        if not ap_ids:
            raise ValueError("ap_ids must be non-empty")
        duration_s = duration_us / 1e6
        events: List[FaultEvent] = []

        def _arrival_times(stream_label: str, rate_per_s: float) -> List[int]:
            if rate_per_s <= 0.0:
                return []
            gen = rng.stream(stream_label)
            count = int(gen.poisson(rate_per_s * duration_s))
            times = sorted(
                int(gen.integers(0, duration_us)) for _ in range(count)
            )
            return times

        # AP crash + restart --------------------------------------------
        crash_gen = rng.stream("faults/crashes/choice")
        for at_us in _arrival_times("faults/crashes", crash_rate_per_s):
            ap_id = ap_ids[int(crash_gen.integers(0, len(ap_ids)))]
            events.append(ApCrash(at_us=at_us, ap_id=ap_id, down_us=crash_down_us))

        # Backhaul partition --------------------------------------------
        part_gen = rng.stream("faults/partitions/choice")
        for at_us in _arrival_times("faults/partitions", partition_rate_per_s):
            # Partition a random non-empty strict subset of the APs
            # away from the controller (and the remaining APs).
            k = int(part_gen.integers(1, max(2, len(ap_ids))))
            idx = part_gen.permutation(len(ap_ids))[:k]
            cut = frozenset(ap_ids[i] for i in idx)
            keep = frozenset(ap_ids) - cut
            events.append(
                Partition(
                    at_us=at_us,
                    duration_us=partition_duration_us,
                    side_a=cut,
                    side_b=keep | {controller_id},
                )
            )

        # Link jitter ----------------------------------------------------
        jit_gen = rng.stream("faults/jitter/choice")
        for at_us in _arrival_times("faults/jitter", jitter_rate_per_s):
            ap_id = ap_ids[int(jit_gen.integers(0, len(ap_ids)))]
            events.append(
                LinkJitter(
                    at_us=at_us,
                    duration_us=jitter_duration_us,
                    src=controller_id,
                    dst=ap_id,
                    jitter_us=jitter_us,
                )
            )

        # Controller crash ----------------------------------------------
        for at_us in _arrival_times(
            "faults/ctrl-crashes", controller_crash_rate_per_s
        ):
            events.append(
                ControllerCrash(
                    at_us=at_us,
                    controller_id=controller_id,
                    down_us=controller_crash_down_us,
                )
            )

        # CSI blackout ---------------------------------------------------
        csi_gen = rng.stream("faults/csi/choice")
        for at_us in _arrival_times("faults/csi", csi_blackout_rate_per_s):
            ap_id = ap_ids[int(csi_gen.integers(0, len(ap_ids)))]
            events.append(
                CsiBlackout(
                    at_us=at_us,
                    duration_us=csi_blackout_duration_us,
                    ap_id=ap_id,
                )
            )

        return cls(events=events)

    @classmethod
    def soak(
        cls,
        rng: RngRegistry,
        ap_ids: Sequence[str],
        duration_us: int,
        *,
        intensity: float = 1.0,
        controller_id: str = "controller",
    ) -> "FaultPlan":
        """Continuous background chaos for endurance runs.

        A convenience preset over :meth:`random` scaled by a single
        ``intensity`` knob: at 1.0 a rolling AP crash/restart lands
        roughly every 20 s somewhere in the array, with backhaul
        jitter and CSI blackouts at similar cadence — enough that a
        multi-minute soak is *never* fault-free, while keeping most of
        the array healthy at any instant.  Downtimes are short (AP
        2 s) so churned clients always have live cells to land on.
        Same determinism contract as :meth:`random`.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return cls.random(
            rng,
            ap_ids,
            duration_us,
            crash_rate_per_s=0.05 * intensity,
            crash_down_us=2_000_000,
            jitter_rate_per_s=0.05 * intensity,
            jitter_us=2_000,
            jitter_duration_us=1_000_000,
            csi_blackout_rate_per_s=0.05 * intensity,
            csi_blackout_duration_us=1_000_000,
            controller_id=controller_id,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def crashes(self) -> List[ApCrash]:
        return [e for e in self.events if isinstance(e, ApCrash)]

    def partitions(self) -> List[Partition]:
        return [e for e in self.events if isinstance(e, Partition)]

    def controller_crashes(self) -> List[ControllerCrash]:
        return [e for e in self.events if isinstance(e, ControllerCrash)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> List[str]:
        """Human-readable one-liner per event (stable ordering)."""
        out: List[str] = []
        for e in self.events:
            if isinstance(e, ApCrash):
                back = f"restart +{e.down_us}us" if e.down_us else "no restart"
                out.append(f"{e.at_us:>12d} crash {e.ap_id} ({back})")
            elif isinstance(e, Partition):
                out.append(
                    f"{e.at_us:>12d} partition {sorted(e.side_a)} | "
                    f"{sorted(e.side_b)} for {e.duration_us}us"
                )
            elif isinstance(e, LinkJitter):
                out.append(
                    f"{e.at_us:>12d} jitter {e.src}->{e.dst} "
                    f"+U[0,{e.jitter_us}]us for {e.duration_us}us"
                )
            elif isinstance(e, ControllerCrash):
                back = f"restart +{e.down_us}us" if e.down_us else "no restart"
                out.append(
                    f"{e.at_us:>12d} ctrl-crash {e.controller_id} ({back})"
                )
            elif isinstance(e, ControllerRestart):
                out.append(f"{e.at_us:>12d} ctrl-restart {e.controller_id}")
            else:
                out.append(
                    f"{e.at_us:>12d} csi-blackout {e.ap_id} for {e.duration_us}us"
                )
        return out
