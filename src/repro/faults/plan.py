"""Declarative, seed-reproducible fault schedules.

A :class:`FaultPlan` is a plain container of fault *events* — frozen
dataclasses describing **what** goes wrong and **when** (all times in
integer sim microseconds).  Plans are data: they can be written by
hand for unit rigs, or drawn from named :class:`~repro.sim.rng.RngRegistry`
streams via :meth:`FaultPlan.random` for chaos sweeps.  Either way the
plan is fully determined before the simulation starts; the injector
(:mod:`repro.faults.injector`) never draws randomness at execution
time, which is what makes two runs of the same ``(seed, plan)`` pair
byte-identical.

Event types
-----------

``ApCrash``
    AP ``ap_id`` crashes at ``at_us`` (radio off, backhaul endpoint
    silent, cyclic queues flushed) and — unless ``down_us`` is ``None``
    — restarts ``down_us`` later, announcing itself to the controller.

``Partition``
    The backhaul is partitioned between endpoint sets ``side_a`` and
    ``side_b`` at ``at_us`` and healed ``duration_us`` later.

``LinkJitter``
    Messages on the directed backhaul link ``src -> dst`` pick up a
    uniform extra delay in ``[0, jitter_us]`` for ``duration_us``,
    which reorders control traffic (the jitter draws come from a named
    stream recorded in the plan so they, too, are reproducible).

``CsiBlackout``
    AP ``ap_id`` stops producing CSI reports for ``duration_us`` —
    the controller's view of that cell goes stale without the AP
    itself failing.

``ControllerCrash``
    The controller process dies at ``at_us`` (volatile state lost,
    backhaul endpoint dark) and — unless ``down_us`` is ``None`` —
    restarts ``down_us`` later.  With an HA cluster armed the warm
    standby detects the silence and promotes itself; without one the
    restarted controller resyncs cold via ``ctrl-hello``.

``ControllerRestart``
    Explicitly restart a (crashed) controller at ``at_us`` — for plans
    that separate the crash and the repair.

Adversary event types (message-level, Jepsen-style)
---------------------------------------------------

``MsgDuplication``
    For ``duration_us``, each backhaul message whose kind matches
    ``kinds`` (``None`` = every kind) is delivered **plus** up to
    ``copies`` extra copies with probability ``probability`` — the
    classic retransmit-amplification adversary that flushes out
    non-idempotent control handlers.

``StaleReplay``
    For ``duration_us`` the adversary *records* up to ``count``
    matching messages; when the window closes it re-delivers them all
    — old control traffic arriving long after the protocol moved on,
    exactly what a healing partition's queued switch fabric does.

``MsgCorruption``
    For ``duration_us`` each matching message is corrupted with
    probability ``probability``; corrupted messages fail their
    checksum and are dropped *with accounting* (never silently).

``OneWayPartition``
    The directed backhaul link ``src -> dst`` drops everything for
    ``duration_us`` while the reverse direction keeps working — the
    asymmetric-reachability case symmetric :class:`Partition` cannot
    express (acks flow, commands do not, or vice versa).

``GrayFailure``
    AP ``ap_id`` keeps heartbeating (heartbeats ride the prioritized
    reliable control class) while every *other* message to or from it
    picks up ``extra_latency_us`` and an extra ``loss_rate`` for
    ``duration_us`` — the queue/CPU pathology of a sick-but-alive AP
    that a liveness table alone can never see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.sim.rng import RngRegistry

#: Union of every fault-event type a plan may hold.
FaultEvent = Union[
    "ApCrash",
    "Partition",
    "LinkJitter",
    "CsiBlackout",
    "ControllerCrash",
    "ControllerRestart",
    "MsgDuplication",
    "StaleReplay",
    "MsgCorruption",
    "OneWayPartition",
    "GrayFailure",
]


def _kinds_str(kinds: Optional[FrozenSet[str]]) -> str:
    """Stable display form of a message-kind filter."""
    return "any" if kinds is None else ",".join(sorted(kinds))


#: Message-class targets :meth:`FaultPlan.random` picks between when
#: drawing duplication/replay adversary events: everything, the
#: switch handshake, the replication/takeover control plane, and the
#: data path.  Kept small and named so a plan's ``describe()`` output
#: reads as intent, not noise.
ADVERSARY_KIND_GROUPS: Tuple[Optional[FrozenSet[str]], ...] = (
    None,
    frozenset({"stop", "start", "ack", "failover"}),
    frozenset({"sta-sync", "serving-update", "ctrl-takeover", "ctrl-hello"}),
    frozenset({"uplink", "data"}),
)


@dataclass(frozen=True)
class ApCrash:
    """AP ``ap_id`` crashes at ``at_us``; restarts after ``down_us``."""

    at_us: int
    ap_id: str
    #: Downtime before restart; ``None`` means the AP never comes back.
    down_us: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.down_us is not None and self.down_us <= 0:
            raise ValueError("down_us must be positive (or None)")


@dataclass(frozen=True)
class Partition:
    """Backhaul partition between ``side_a`` and ``side_b``."""

    at_us: int
    duration_us: int
    side_a: FrozenSet[str]
    side_b: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        object.__setattr__(self, "side_a", frozenset(self.side_a))
        object.__setattr__(self, "side_b", frozenset(self.side_b))
        if self.side_a & self.side_b:
            raise ValueError("partition sides must be disjoint")


@dataclass(frozen=True)
class LinkJitter:
    """Uniform [0, jitter_us] extra delay on directed link src->dst."""

    at_us: int
    duration_us: int
    src: str
    dst: str
    jitter_us: int

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.jitter_us <= 0:
            raise ValueError("jitter_us must be positive")


@dataclass(frozen=True)
class CsiBlackout:
    """AP ``ap_id`` suppresses CSI reports for ``duration_us``."""

    at_us: int
    duration_us: int
    ap_id: str

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")


@dataclass(frozen=True)
class ControllerCrash:
    """Controller ``controller_id`` crashes at ``at_us``."""

    at_us: int
    controller_id: str = "controller"
    #: Downtime before restart; ``None`` means it never comes back
    #: unaided (an HA standby may still take over).
    down_us: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.down_us is not None and self.down_us <= 0:
            raise ValueError("down_us must be positive (or None)")


@dataclass(frozen=True)
class ControllerRestart:
    """Restart a crashed controller at ``at_us``."""

    at_us: int
    controller_id: str = "controller"

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")


@dataclass(frozen=True)
class MsgDuplication:
    """Duplicate matching backhaul messages for ``duration_us``."""

    at_us: int
    duration_us: int
    #: Per-message duplication probability.
    probability: float = 0.3
    #: Extra copies delivered per duplicated message.
    copies: int = 1
    #: Message kinds to target; ``None`` duplicates every kind.
    kinds: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.copies <= 0:
            raise ValueError("copies must be positive")
        if self.kinds is not None:
            if not self.kinds:
                raise ValueError("kinds must be non-empty (or None)")
            object.__setattr__(self, "kinds", frozenset(self.kinds))


@dataclass(frozen=True)
class StaleReplay:
    """Record up to ``count`` matching messages during the window,
    then re-deliver them all when it closes."""

    at_us: int
    duration_us: int
    #: Capture-buffer bound (replay is never unbounded).
    count: int = 32
    #: Message kinds to record; ``None`` records every kind.
    kinds: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.kinds is not None:
            if not self.kinds:
                raise ValueError("kinds must be non-empty (or None)")
            object.__setattr__(self, "kinds", frozenset(self.kinds))


@dataclass(frozen=True)
class MsgCorruption:
    """Corrupt (checksum-fail -> drop, with accounting) matching
    messages with ``probability`` for ``duration_us``."""

    at_us: int
    duration_us: int
    probability: float = 0.05
    #: Message kinds to target; ``None`` corrupts every kind.
    kinds: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.kinds is not None:
            if not self.kinds:
                raise ValueError("kinds must be non-empty (or None)")
            object.__setattr__(self, "kinds", frozenset(self.kinds))


@dataclass(frozen=True)
class OneWayPartition:
    """Drop everything on the directed link ``src -> dst`` only."""

    at_us: int
    duration_us: int
    src: str
    dst: str

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")


@dataclass(frozen=True)
class GrayFailure:
    """AP ``ap_id`` heartbeats fine while its backhaul degrades."""

    at_us: int
    duration_us: int
    ap_id: str
    #: Extra one-way latency on non-reliable messages to/from the AP.
    extra_latency_us: int = 2_000
    #: Extra Bernoulli loss on non-reliable messages to/from the AP.
    loss_rate: float = 0.2

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.extra_latency_us < 0:
            raise ValueError("extra_latency_us must be non-negative")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if self.extra_latency_us == 0 and self.loss_rate == 0.0:
            raise ValueError(
                "gray failure needs extra_latency_us or loss_rate"
            )


def _sort_key(event: FaultEvent) -> Tuple[int, int, str]:
    """Deterministic total order: time, then type rank, then identity."""
    rank = {
        ApCrash: 0,
        Partition: 1,
        LinkJitter: 2,
        CsiBlackout: 3,
        ControllerCrash: 4,
        ControllerRestart: 5,
        MsgDuplication: 6,
        StaleReplay: 7,
        MsgCorruption: 8,
        OneWayPartition: 9,
        GrayFailure: 10,
    }
    if isinstance(event, ApCrash):
        ident = event.ap_id
    elif isinstance(event, Partition):
        ident = ",".join(sorted(event.side_a)) + "|" + ",".join(sorted(event.side_b))
    elif isinstance(event, (LinkJitter, OneWayPartition)):
        ident = f"{event.src}->{event.dst}"
    elif isinstance(event, (ControllerCrash, ControllerRestart)):
        ident = event.controller_id
    elif isinstance(event, (MsgDuplication, StaleReplay, MsgCorruption)):
        ident = _kinds_str(event.kinds)
    else:
        ident = event.ap_id
    return (event.at_us, rank[type(event)], ident)


@dataclass
class FaultPlan:
    """An ordered, immutable-in-spirit schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=_sort_key)
        self._validate()

    def _validate(self) -> None:
        """Cross-event checks the per-event ``__post_init__`` cannot do.

        Two :class:`OneWayPartition` windows on the same *directed*
        link must not overlap: the injector heals by directed link, so
        an overlap would make the earlier heal silently reopen the
        later window.  Opposite directions on the same node pair are
        fine (that is just a full partition, expressed twice).
        """
        windows: dict = {}
        for event in self.events:
            if not isinstance(event, OneWayPartition):
                continue
            link = (event.src, event.dst)
            for start, end in windows.get(link, ()):  # sorted by at_us
                if event.at_us < end and start < event.at_us + event.duration_us:
                    raise ValueError(
                        "overlapping one-way partitions on directed link "
                        f"{event.src}->{event.dst}: "
                        f"[{start}, {end}) and "
                        f"[{event.at_us}, {event.at_us + event.duration_us})"
                    )
            windows.setdefault(link, []).append(
                (event.at_us, event.at_us + event.duration_us)
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Insert ``event`` keeping the schedule sorted; returns self."""
        self.events.append(event)
        self.events.sort(key=_sort_key)
        self._validate()
        return self

    @classmethod
    def random(
        cls,
        rng: RngRegistry,
        ap_ids: Sequence[str],
        duration_us: int,
        *,
        crash_rate_per_s: float = 0.0,
        crash_down_us: int = 500_000,
        partition_rate_per_s: float = 0.0,
        partition_duration_us: int = 200_000,
        jitter_rate_per_s: float = 0.0,
        jitter_us: int = 5_000,
        jitter_duration_us: int = 500_000,
        csi_blackout_rate_per_s: float = 0.0,
        csi_blackout_duration_us: int = 500_000,
        controller_crash_rate_per_s: float = 0.0,
        controller_crash_down_us: Optional[int] = 1_000_000,
        controller_id: str = "controller",
        duplication_rate_per_s: float = 0.0,
        duplication_duration_us: int = 500_000,
        duplication_probability: float = 0.3,
        duplication_copies: int = 1,
        replay_rate_per_s: float = 0.0,
        replay_duration_us: int = 200_000,
        replay_count: int = 32,
        corruption_rate_per_s: float = 0.0,
        corruption_duration_us: int = 500_000,
        corruption_probability: float = 0.05,
        oneway_rate_per_s: float = 0.0,
        oneway_duration_us: int = 200_000,
        gray_rate_per_s: float = 0.0,
        gray_duration_us: int = 1_000_000,
        gray_extra_latency_us: int = 2_000,
        gray_loss_rate: float = 0.2,
    ) -> "FaultPlan":
        """Draw a plan from named rng streams (``faults/...``).

        Each fault family arrives as a Poisson process with the given
        per-second rate over ``[0, duration_us)``.  All draws come from
        streams named for the family, so changing one rate never
        perturbs the draws of another family, and identical
        ``(seed, rates)`` pairs yield identical plans.
        """
        if duration_us <= 0:
            raise ValueError("duration_us must be positive")
        ap_ids = list(ap_ids)
        if not ap_ids:
            raise ValueError("ap_ids must be non-empty")
        duration_s = duration_us / 1e6
        events: List[FaultEvent] = []

        # Stream labels stay literal at every .stream() call site (the
        # repro.analysis DET003 contract: ownership must be greppable),
        # so the helper takes the generator, not the label.
        def _arrival_times(
            gen: "np.random.Generator", rate_per_s: float
        ) -> List[int]:
            if rate_per_s <= 0.0:
                return []
            count = int(gen.poisson(rate_per_s * duration_s))
            times = sorted(
                int(gen.integers(0, duration_us)) for _ in range(count)
            )
            return times

        # AP crash + restart --------------------------------------------
        crash_gen = rng.stream("faults/crashes/choice")
        for at_us in _arrival_times(rng.stream("faults/crashes"), crash_rate_per_s):
            ap_id = ap_ids[int(crash_gen.integers(0, len(ap_ids)))]
            events.append(ApCrash(at_us=at_us, ap_id=ap_id, down_us=crash_down_us))

        # Backhaul partition --------------------------------------------
        part_gen = rng.stream("faults/partitions/choice")
        for at_us in _arrival_times(rng.stream("faults/partitions"), partition_rate_per_s):
            # Partition a random non-empty strict subset of the APs
            # away from the controller (and the remaining APs).
            k = int(part_gen.integers(1, max(2, len(ap_ids))))
            idx = part_gen.permutation(len(ap_ids))[:k]
            cut = frozenset(ap_ids[i] for i in idx)
            keep = frozenset(ap_ids) - cut
            events.append(
                Partition(
                    at_us=at_us,
                    duration_us=partition_duration_us,
                    side_a=cut,
                    side_b=keep | {controller_id},
                )
            )

        # Link jitter ----------------------------------------------------
        jit_gen = rng.stream("faults/jitter/choice")
        for at_us in _arrival_times(rng.stream("faults/jitter"), jitter_rate_per_s):
            ap_id = ap_ids[int(jit_gen.integers(0, len(ap_ids)))]
            events.append(
                LinkJitter(
                    at_us=at_us,
                    duration_us=jitter_duration_us,
                    src=controller_id,
                    dst=ap_id,
                    jitter_us=jitter_us,
                )
            )

        # Controller crash ----------------------------------------------
        for at_us in _arrival_times(
            rng.stream("faults/ctrl-crashes"), controller_crash_rate_per_s
        ):
            events.append(
                ControllerCrash(
                    at_us=at_us,
                    controller_id=controller_id,
                    down_us=controller_crash_down_us,
                )
            )

        # CSI blackout ---------------------------------------------------
        csi_gen = rng.stream("faults/csi/choice")
        for at_us in _arrival_times(rng.stream("faults/csi"), csi_blackout_rate_per_s):
            ap_id = ap_ids[int(csi_gen.integers(0, len(ap_ids)))]
            events.append(
                CsiBlackout(
                    at_us=at_us,
                    duration_us=csi_blackout_duration_us,
                    ap_id=ap_id,
                )
            )

        # Message duplication -------------------------------------------
        dup_gen = rng.stream("faults/dup/choice")
        for at_us in _arrival_times(rng.stream("faults/dup"), duplication_rate_per_s):
            kinds = ADVERSARY_KIND_GROUPS[
                int(dup_gen.integers(0, len(ADVERSARY_KIND_GROUPS)))
            ]
            events.append(
                MsgDuplication(
                    at_us=at_us,
                    duration_us=duplication_duration_us,
                    probability=duplication_probability,
                    copies=duplication_copies,
                    kinds=kinds,
                )
            )

        # Stale replay ---------------------------------------------------
        replay_gen = rng.stream("faults/replay/choice")
        for at_us in _arrival_times(rng.stream("faults/replay"), replay_rate_per_s):
            kinds = ADVERSARY_KIND_GROUPS[
                int(replay_gen.integers(0, len(ADVERSARY_KIND_GROUPS)))
            ]
            events.append(
                StaleReplay(
                    at_us=at_us,
                    duration_us=replay_duration_us,
                    count=replay_count,
                    kinds=kinds,
                )
            )

        # Corruption -> drop --------------------------------------------
        for at_us in _arrival_times(rng.stream("faults/corrupt"), corruption_rate_per_s):
            events.append(
                MsgCorruption(
                    at_us=at_us,
                    duration_us=corruption_duration_us,
                    probability=corruption_probability,
                )
            )

        # One-way partition ---------------------------------------------
        # Draws that would overlap an earlier window on the same
        # directed link are skipped (the plan validator rejects them),
        # deterministically: arrival times are processed in sorted
        # order, so the same draws always keep the same subset.
        oneway_gen = rng.stream("faults/oneway/choice")
        oneway_busy: dict = {}
        for at_us in _arrival_times(rng.stream("faults/oneway"), oneway_rate_per_s):
            ap_id = ap_ids[int(oneway_gen.integers(0, len(ap_ids)))]
            towards_ap = bool(oneway_gen.integers(0, 2))
            src, dst = (
                (controller_id, ap_id) if towards_ap else (ap_id, controller_id)
            )
            end_us = at_us + oneway_duration_us
            busy = oneway_busy.setdefault((src, dst), [])
            if any(at_us < e and s < end_us for s, e in busy):
                continue
            busy.append((at_us, end_us))
            events.append(
                OneWayPartition(
                    at_us=at_us,
                    duration_us=oneway_duration_us,
                    src=src,
                    dst=dst,
                )
            )

        # Gray failure ---------------------------------------------------
        gray_gen = rng.stream("faults/gray/choice")
        for at_us in _arrival_times(rng.stream("faults/gray"), gray_rate_per_s):
            ap_id = ap_ids[int(gray_gen.integers(0, len(ap_ids)))]
            events.append(
                GrayFailure(
                    at_us=at_us,
                    duration_us=gray_duration_us,
                    ap_id=ap_id,
                    extra_latency_us=gray_extra_latency_us,
                    loss_rate=gray_loss_rate,
                )
            )

        return cls(events=events)

    @classmethod
    def soak(
        cls,
        rng: RngRegistry,
        ap_ids: Sequence[str],
        duration_us: int,
        *,
        intensity: float = 1.0,
        adversary_intensity: float = 0.0,
        controller_id: str = "controller",
    ) -> "FaultPlan":
        """Continuous background chaos for endurance runs.

        A convenience preset over :meth:`random` scaled by a single
        ``intensity`` knob: at 1.0 a rolling AP crash/restart lands
        roughly every 20 s somewhere in the array, with backhaul
        jitter and CSI blackouts at similar cadence — enough that a
        multi-minute soak is *never* fault-free, while keeping most of
        the array healthy at any instant.  Downtimes are short (AP
        2 s) so churned clients always have live cells to land on.
        Same determinism contract as :meth:`random`.

        ``adversary_intensity`` (default 0 — existing soak plans are
        unchanged to the byte) layers the message-level adversary on
        top: duplication, stale replay, corruption, one-way partitions
        and gray failures at ~1/30 s each per unit of intensity.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        if adversary_intensity < 0:
            raise ValueError("adversary_intensity must be non-negative")
        return cls.random(
            rng,
            ap_ids,
            duration_us,
            crash_rate_per_s=0.05 * intensity,
            crash_down_us=2_000_000,
            jitter_rate_per_s=0.05 * intensity,
            jitter_us=2_000,
            jitter_duration_us=1_000_000,
            csi_blackout_rate_per_s=0.05 * intensity,
            csi_blackout_duration_us=1_000_000,
            controller_id=controller_id,
            duplication_rate_per_s=0.033 * adversary_intensity,
            replay_rate_per_s=0.033 * adversary_intensity,
            corruption_rate_per_s=0.033 * adversary_intensity,
            oneway_rate_per_s=0.033 * adversary_intensity,
            gray_rate_per_s=0.033 * adversary_intensity,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def crashes(self) -> List[ApCrash]:
        return [e for e in self.events if isinstance(e, ApCrash)]

    def partitions(self) -> List[Partition]:
        return [e for e in self.events if isinstance(e, Partition)]

    def controller_crashes(self) -> List[ControllerCrash]:
        return [e for e in self.events if isinstance(e, ControllerCrash)]

    def one_way_partitions(self) -> List[OneWayPartition]:
        return [e for e in self.events if isinstance(e, OneWayPartition)]

    def gray_failures(self) -> List[GrayFailure]:
        return [e for e in self.events if isinstance(e, GrayFailure)]

    def adversary_events(self) -> List[FaultEvent]:
        """Every message-level adversary event in the plan."""
        kinds = (
            MsgDuplication,
            StaleReplay,
            MsgCorruption,
            OneWayPartition,
            GrayFailure,
        )
        return [e for e in self.events if isinstance(e, kinds)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> List[str]:
        """Human-readable one-liner per event (stable ordering)."""
        out: List[str] = []
        for e in self.events:
            if isinstance(e, ApCrash):
                back = f"restart +{e.down_us}us" if e.down_us else "no restart"
                out.append(f"{e.at_us:>12d} crash {e.ap_id} ({back})")
            elif isinstance(e, Partition):
                out.append(
                    f"{e.at_us:>12d} partition {sorted(e.side_a)} | "
                    f"{sorted(e.side_b)} for {e.duration_us}us"
                )
            elif isinstance(e, LinkJitter):
                out.append(
                    f"{e.at_us:>12d} jitter {e.src}->{e.dst} "
                    f"+U[0,{e.jitter_us}]us for {e.duration_us}us"
                )
            elif isinstance(e, ControllerCrash):
                back = f"restart +{e.down_us}us" if e.down_us else "no restart"
                out.append(
                    f"{e.at_us:>12d} ctrl-crash {e.controller_id} ({back})"
                )
            elif isinstance(e, ControllerRestart):
                out.append(f"{e.at_us:>12d} ctrl-restart {e.controller_id}")
            elif isinstance(e, MsgDuplication):
                out.append(
                    f"{e.at_us:>12d} dup [{_kinds_str(e.kinds)}] "
                    f"p={e.probability} x{e.copies} for {e.duration_us}us"
                )
            elif isinstance(e, StaleReplay):
                out.append(
                    f"{e.at_us:>12d} replay [{_kinds_str(e.kinds)}] "
                    f"<= {e.count} msgs after {e.duration_us}us"
                )
            elif isinstance(e, MsgCorruption):
                out.append(
                    f"{e.at_us:>12d} corrupt [{_kinds_str(e.kinds)}] "
                    f"p={e.probability} for {e.duration_us}us"
                )
            elif isinstance(e, OneWayPartition):
                out.append(
                    f"{e.at_us:>12d} oneway {e.src}-x->{e.dst} "
                    f"for {e.duration_us}us"
                )
            elif isinstance(e, GrayFailure):
                out.append(
                    f"{e.at_us:>12d} gray {e.ap_id} "
                    f"+{e.extra_latency_us}us loss={e.loss_rate} "
                    f"for {e.duration_us}us"
                )
            else:
                out.append(
                    f"{e.at_us:>12d} csi-blackout {e.ap_id} for {e.duration_us}us"
                )
        return out
