"""Arms a :class:`FaultPlan` against a built testbed.

The injector is deliberately dumb: it walks the (pre-sorted, fully
materialised) plan and schedules one sim callback per fault action —
crash, restart, partition, heal, jitter-on, jitter-off, blackout-on,
blackout-off.  It draws **no randomness at execution time**; the only
generators it touches are the per-link jitter streams, whose labels
are derived from the plan's own (deterministic) event fields.  Two
runs of the same ``(seed, plan)`` therefore produce byte-identical
fault traces and byte-identical protocol behaviour.

The injector duck-types its target: anything with ``sim``,
``backhaul``, ``rng`` and a ``wgtt_aps`` (or ``aps``) mapping works,
so unit rigs don't need a full :class:`~repro.scenarios.testbed.Testbed`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import (
    ApCrash,
    ControllerCrash,
    ControllerRestart,
    CsiBlackout,
    FaultPlan,
    LinkJitter,
    Partition,
)


class FaultInjector:
    """Schedules a plan's faults on the discrete-event engine."""

    def __init__(self, testbed, plan: FaultPlan):
        self.plan = plan
        self.sim = testbed.sim
        self.backhaul = testbed.backhaul
        self.rng = testbed.rng
        aps = getattr(testbed, "wgtt_aps", None)
        if aps is None:
            aps = getattr(testbed, "aps", {})
        self.aps: Dict[str, object] = aps
        #: Controllers addressable by ControllerCrash/ControllerRestart.
        #: Duck-typed like the APs: anything with alive/crash()/restart().
        self.controllers: Dict[str, object] = {}
        controller = getattr(testbed, "controller", None)
        if controller is not None:
            self.controllers[
                getattr(controller, "controller_id", "controller")
            ] = controller
        standby = getattr(testbed, "standby", None)
        if standby is not None:
            self.controllers[
                getattr(standby, "controller_id", "controller-b")
            ] = standby
        #: (time_us, action, subject) — the executed fault trace.
        #: Actions: crash / restart / partition / heal / jitter-on /
        #: jitter-off / csi-off / csi-on.
        self.events: List[Tuple[int, str, str]] = []
        self._armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every fault in the plan.  Idempotent-hostile: call once."""
        if self._armed:
            raise RuntimeError("FaultInjector.arm() called twice")
        self._armed = True
        now = self.sim.now
        for event in self.plan:
            delay = max(0, event.at_us - now)
            if isinstance(event, ApCrash):
                self.sim.schedule(delay, lambda e=event: self._crash(e))
            elif isinstance(event, Partition):
                self.sim.schedule(delay, lambda e=event: self._partition(e))
            elif isinstance(event, LinkJitter):
                self.sim.schedule(delay, lambda e=event: self._jitter_on(e))
            elif isinstance(event, CsiBlackout):
                self.sim.schedule(delay, lambda e=event: self._csi_off(e))
            elif isinstance(event, ControllerCrash):
                self.sim.schedule(delay, lambda e=event: self._ctrl_crash(e))
            elif isinstance(event, ControllerRestart):
                self.sim.schedule(
                    delay,
                    lambda e=event: self._ctrl_restart(e.controller_id),
                )
            else:  # pragma: no cover - plan types are closed
                raise TypeError(f"unknown fault event {event!r}")

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------

    def _log(self, action: str, subject: str) -> None:
        self.events.append((self.sim.now, action, subject))
        tracer = self.sim.obs.trace
        if tracer.active:
            tracer.emit(
                "faults", "fault", track="faults", action=action, subject=subject
            )

    def _ap(self, ap_id: str):
        try:
            return self.aps[ap_id]
        except KeyError:
            raise KeyError(
                f"fault plan names unknown AP {ap_id!r}; "
                f"known: {sorted(self.aps)}"
            ) from None

    def _crash(self, event: ApCrash) -> None:
        ap = self._ap(event.ap_id)
        if not getattr(ap, "alive", True):
            return  # already down (overlapping crash events)
        self._log("crash", event.ap_id)
        ap.crash()
        if event.down_us is not None:
            self.sim.schedule(event.down_us, lambda: self._restart(event.ap_id))

    def _restart(self, ap_id: str) -> None:
        ap = self._ap(ap_id)
        if getattr(ap, "alive", True):
            return  # already restarted
        self._log("restart", ap_id)
        ap.restart()

    def _partition(self, event: Partition) -> None:
        self._log(
            "partition",
            ",".join(sorted(event.side_a)) + "|" + ",".join(sorted(event.side_b)),
        )
        pid = self.backhaul.partition(event.side_a, event.side_b)
        self.sim.schedule(event.duration_us, lambda: self._heal(pid, event))

    def _heal(self, pid: int, event: Partition) -> None:
        self._log(
            "heal",
            ",".join(sorted(event.side_a)) + "|" + ",".join(sorted(event.side_b)),
        )
        self.backhaul.heal(pid)

    def _jitter_on(self, event: LinkJitter) -> None:
        self._log("jitter-on", f"{event.src}->{event.dst}")
        stream = self.rng.stream(
            f"faults/jitter/{event.src}->{event.dst}@{event.at_us}"
        )
        self.backhaul.set_link_jitter(event.src, event.dst, event.jitter_us, stream)
        self.sim.schedule(event.duration_us, lambda: self._jitter_off(event))

    def _jitter_off(self, event: LinkJitter) -> None:
        self._log("jitter-off", f"{event.src}->{event.dst}")
        self.backhaul.clear_link_jitter(event.src, event.dst)

    def _csi_off(self, event: CsiBlackout) -> None:
        ap = self._ap(event.ap_id)
        self._log("csi-off", event.ap_id)
        ap.csi_suppressed = True
        self.sim.schedule(event.duration_us, lambda: self._csi_on(event.ap_id))

    def _csi_on(self, ap_id: str) -> None:
        ap = self._ap(ap_id)
        self._log("csi-on", ap_id)
        ap.csi_suppressed = False

    def _controller(self, controller_id: str):
        try:
            return self.controllers[controller_id]
        except KeyError:
            raise KeyError(
                f"fault plan names unknown controller {controller_id!r}; "
                f"known: {sorted(self.controllers)}"
            ) from None

    def _ctrl_crash(self, event: ControllerCrash) -> None:
        controller = self._controller(event.controller_id)
        if not getattr(controller, "alive", True):
            return  # already down (overlapping crash events)
        self._log("ctrl-crash", event.controller_id)
        controller.crash()
        if event.down_us is not None:
            self.sim.schedule(
                event.down_us,
                lambda: self._ctrl_restart(event.controller_id),
            )

    def _ctrl_restart(self, controller_id: str) -> None:
        controller = self._controller(controller_id)
        if getattr(controller, "alive", True):
            return  # already restarted
        self._log("ctrl-restart", controller_id)
        controller.restart()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def crash_times(self) -> List[Tuple[int, str]]:
        """(time_us, ap_id) for each executed crash, in order."""
        return [(t, s) for (t, a, s) in self.events if a == "crash"]

    def controller_crash_times(self) -> List[Tuple[int, str]]:
        """(time_us, controller_id) per executed controller crash."""
        return [(t, s) for (t, a, s) in self.events if a == "ctrl-crash"]

    def trace_lines(self) -> List[str]:
        """Canonical one-line-per-event rendering (for byte comparison)."""
        return [f"{t} {a} {s}" for (t, a, s) in self.events]

    def first_crash_us(self) -> Optional[int]:
        crashes = self.crash_times()
        return crashes[0][0] if crashes else None
