"""Arms a :class:`FaultPlan` against a built testbed.

The injector is deliberately dumb: it walks the (pre-sorted, fully
materialised) plan and schedules one sim callback per fault action —
crash, restart, partition, heal, jitter-on, jitter-off, blackout-on,
blackout-off.  It draws **no randomness at execution time**; the only
generators it touches are the per-link jitter streams, whose labels
are derived from the plan's own (deterministic) event fields.  Two
runs of the same ``(seed, plan)`` therefore produce byte-identical
fault traces and byte-identical protocol behaviour.

The injector duck-types its target: anything with ``sim``,
``backhaul``, ``rng`` and a ``wgtt_aps`` (or ``aps``) mapping works,
so unit rigs don't need a full :class:`~repro.scenarios.testbed.Testbed`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import (
    ApCrash,
    ControllerCrash,
    ControllerRestart,
    CsiBlackout,
    FaultPlan,
    GrayFailure,
    LinkJitter,
    MsgCorruption,
    MsgDuplication,
    OneWayPartition,
    Partition,
    StaleReplay,
    _kinds_str,
)


class FaultInjector:
    """Schedules a plan's faults on the discrete-event engine."""

    def __init__(self, testbed, plan: FaultPlan):
        self.plan = plan
        self.sim = testbed.sim
        self.backhaul = testbed.backhaul
        self.rng = testbed.rng
        aps = getattr(testbed, "wgtt_aps", None)
        if aps is None:
            aps = getattr(testbed, "aps", {})
        self.aps: Dict[str, object] = aps
        #: Controllers addressable by ControllerCrash/ControllerRestart.
        #: Duck-typed like the APs: anything with alive/crash()/restart().
        self.controllers: Dict[str, object] = {}
        controller = getattr(testbed, "controller", None)
        if controller is not None:
            self.controllers[
                getattr(controller, "controller_id", "controller")
            ] = controller
        standby = getattr(testbed, "standby", None)
        if standby is not None:
            self.controllers[
                getattr(standby, "controller_id", "controller-b")
            ] = standby
        #: (time_us, action, subject) — the executed fault trace.
        #: Actions: crash / restart / partition / heal / jitter-on /
        #: jitter-off / csi-off / csi-on / ctrl-crash / ctrl-restart /
        #: dup-on / dup-off / replay-capture / replay-fire /
        #: corrupt-on / corrupt-off / oneway-on / oneway-off /
        #: gray-on / gray-off.
        self.events: List[Tuple[int, str, str]] = []
        #: Gray-failure windows opened so far (metrics surface this).
        self.gray_windows = 0
        self._armed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every fault in the plan.  Idempotent-hostile: call once."""
        if self._armed:
            raise RuntimeError("FaultInjector.arm() called twice")
        self._armed = True
        now = self.sim.now
        for event in self.plan:
            delay = max(0, event.at_us - now)
            if isinstance(event, ApCrash):
                self.sim.schedule(delay, lambda e=event: self._crash(e))
            elif isinstance(event, Partition):
                self.sim.schedule(delay, lambda e=event: self._partition(e))
            elif isinstance(event, LinkJitter):
                self.sim.schedule(delay, lambda e=event: self._jitter_on(e))
            elif isinstance(event, CsiBlackout):
                self.sim.schedule(delay, lambda e=event: self._csi_off(e))
            elif isinstance(event, ControllerCrash):
                self.sim.schedule(delay, lambda e=event: self._ctrl_crash(e))
            elif isinstance(event, ControllerRestart):
                self.sim.schedule(
                    delay,
                    lambda e=event: self._ctrl_restart(e.controller_id),
                )
            elif isinstance(event, MsgDuplication):
                self.sim.schedule(delay, lambda e=event: self._dup_on(e))
            elif isinstance(event, StaleReplay):
                self.sim.schedule(delay, lambda e=event: self._replay_start(e))
            elif isinstance(event, MsgCorruption):
                self.sim.schedule(delay, lambda e=event: self._corrupt_on(e))
            elif isinstance(event, OneWayPartition):
                self.sim.schedule(delay, lambda e=event: self._oneway_on(e))
            elif isinstance(event, GrayFailure):
                self.sim.schedule(delay, lambda e=event: self._gray_on(e))
            else:  # pragma: no cover - plan types are closed
                raise TypeError(f"unknown fault event {event!r}")

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------

    def _log(self, action: str, subject: str) -> None:
        self.events.append((self.sim.now, action, subject))
        tracer = self.sim.obs.trace
        if tracer.active:
            tracer.emit(
                "faults", "fault", track="faults", action=action, subject=subject
            )

    def _ap(self, ap_id: str):
        try:
            return self.aps[ap_id]
        except KeyError:
            raise KeyError(
                f"fault plan names unknown AP {ap_id!r}; "
                f"known: {sorted(self.aps)}"
            ) from None

    def _crash(self, event: ApCrash) -> None:
        ap = self._ap(event.ap_id)
        if not getattr(ap, "alive", True):
            return  # already down (overlapping crash events)
        self._log("crash", event.ap_id)
        ap.crash()
        if event.down_us is not None:
            self.sim.schedule(event.down_us, lambda: self._restart(event.ap_id))

    def _restart(self, ap_id: str) -> None:
        ap = self._ap(ap_id)
        if getattr(ap, "alive", True):
            return  # already restarted
        self._log("restart", ap_id)
        ap.restart()

    def _partition(self, event: Partition) -> None:
        self._log(
            "partition",
            ",".join(sorted(event.side_a)) + "|" + ",".join(sorted(event.side_b)),
        )
        pid = self.backhaul.partition(event.side_a, event.side_b)
        self.sim.schedule(event.duration_us, lambda: self._heal(pid, event))

    def _heal(self, pid: int, event: Partition) -> None:
        self._log(
            "heal",
            ",".join(sorted(event.side_a)) + "|" + ",".join(sorted(event.side_b)),
        )
        self.backhaul.heal(pid)

    def _jitter_on(self, event: LinkJitter) -> None:
        self._log("jitter-on", f"{event.src}->{event.dst}")
        stream = self.rng.stream(
            f"faults/jitter/{event.src}->{event.dst}@{event.at_us}"
        )
        self.backhaul.set_link_jitter(event.src, event.dst, event.jitter_us, stream)
        self.sim.schedule(event.duration_us, lambda: self._jitter_off(event))

    def _jitter_off(self, event: LinkJitter) -> None:
        self._log("jitter-off", f"{event.src}->{event.dst}")
        self.backhaul.clear_link_jitter(event.src, event.dst)

    def _csi_off(self, event: CsiBlackout) -> None:
        ap = self._ap(event.ap_id)
        self._log("csi-off", event.ap_id)
        ap.csi_suppressed = True
        self.sim.schedule(event.duration_us, lambda: self._csi_on(event.ap_id))

    def _csi_on(self, ap_id: str) -> None:
        ap = self._ap(ap_id)
        self._log("csi-on", ap_id)
        ap.csi_suppressed = False

    def _controller(self, controller_id: str):
        try:
            return self.controllers[controller_id]
        except KeyError:
            raise KeyError(
                f"fault plan names unknown controller {controller_id!r}; "
                f"known: {sorted(self.controllers)}"
            ) from None

    def _ctrl_crash(self, event: ControllerCrash) -> None:
        controller = self._controller(event.controller_id)
        if not getattr(controller, "alive", True):
            return  # already down (overlapping crash events)
        self._log("ctrl-crash", event.controller_id)
        controller.crash()
        if event.down_us is not None:
            self.sim.schedule(
                event.down_us,
                lambda: self._ctrl_restart(event.controller_id),
            )

    def _ctrl_restart(self, controller_id: str) -> None:
        controller = self._controller(controller_id)
        if getattr(controller, "alive", True):
            return  # already restarted
        self._log("ctrl-restart", controller_id)
        controller.restart()

    # -- message-level adversary executors ----------------------------
    #
    # Each window's randomness comes from a stream whose label is
    # derived from the event's own plan fields (like link jitter), so
    # execution-time draws stay inside the determinism contract.

    def _dup_on(self, event: MsgDuplication) -> None:
        subject = _kinds_str(event.kinds)
        self._log("dup-on", subject)
        stream = self.rng.stream(f"faults/dup/{subject}@{event.at_us}")
        handle = self.backhaul.set_duplication(
            event.kinds, event.probability, event.copies, stream
        )
        self.sim.schedule(
            event.duration_us, lambda: self._dup_off(handle, subject)
        )

    def _dup_off(self, handle: int, subject: str) -> None:
        self._log("dup-off", subject)
        self.backhaul.clear_duplication(handle)

    def _replay_start(self, event: StaleReplay) -> None:
        subject = _kinds_str(event.kinds)
        self._log("replay-capture", subject)
        handle = self.backhaul.start_replay_capture(event.kinds, event.count)
        self.sim.schedule(
            event.duration_us, lambda: self._replay_fire(handle, subject)
        )

    def _replay_fire(self, handle: int, subject: str) -> None:
        replayed = self.backhaul.replay_captured(handle)
        self._log("replay-fire", f"{subject}:{replayed}")

    def _corrupt_on(self, event: MsgCorruption) -> None:
        subject = _kinds_str(event.kinds)
        self._log("corrupt-on", subject)
        stream = self.rng.stream(f"faults/corrupt/{subject}@{event.at_us}")
        handle = self.backhaul.set_corruption(
            event.kinds, event.probability, stream
        )
        self.sim.schedule(
            event.duration_us, lambda: self._corrupt_off(handle, subject)
        )

    def _corrupt_off(self, handle: int, subject: str) -> None:
        self._log("corrupt-off", subject)
        self.backhaul.clear_corruption(handle)

    def _oneway_on(self, event: OneWayPartition) -> None:
        subject = f"{event.src}->{event.dst}"
        self._log("oneway-on", subject)
        handle = self.backhaul.partition_oneway(event.src, event.dst)
        self.sim.schedule(
            event.duration_us, lambda: self._oneway_off(handle, subject)
        )

    def _oneway_off(self, handle: int, subject: str) -> None:
        self._log("oneway-off", subject)
        self.backhaul.heal_oneway(handle)

    def _gray_on(self, event: GrayFailure) -> None:
        self._log("gray-on", event.ap_id)
        self.gray_windows += 1
        stream = self.rng.stream(f"faults/gray/{event.ap_id}@{event.at_us}")
        self.backhaul.set_node_degraded(
            event.ap_id, event.extra_latency_us, event.loss_rate, stream
        )
        self.sim.schedule(
            event.duration_us, lambda: self._gray_off(event.ap_id)
        )

    def _gray_off(self, ap_id: str) -> None:
        self._log("gray-off", ap_id)
        self.backhaul.clear_node_degraded(ap_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def crash_times(self) -> List[Tuple[int, str]]:
        """(time_us, ap_id) for each executed crash, in order."""
        return [(t, s) for (t, a, s) in self.events if a == "crash"]

    def controller_crash_times(self) -> List[Tuple[int, str]]:
        """(time_us, controller_id) per executed controller crash."""
        return [(t, s) for (t, a, s) in self.events if a == "ctrl-crash"]

    def trace_lines(self) -> List[str]:
        """Canonical one-line-per-event rendering (for byte comparison)."""
        return [f"{t} {a} {s}" for (t, a, s) in self.events]

    def first_crash_us(self) -> Optional[int]:
        crashes = self.crash_times()
        return crashes[0][0] if crashes else None
