"""Deterministic fault injection for the WGTT testbed.

``repro.faults`` turns the simulator into a chaos rig: a
:class:`FaultPlan` is a declarative, seed-reproducible schedule of
faults (AP crash/restart, backhaul partition/heal, per-link delay
jitter with reordering, CSI-report suppression, controller kills), and
a :class:`FaultInjector` arms a plan against a built testbed, executing
each fault on the discrete-event engine and logging an exact trace.

The message-level *adversary* events (:class:`MsgDuplication`,
:class:`StaleReplay`, :class:`MsgCorruption`, :class:`OneWayPartition`,
:class:`GrayFailure`) attack the backhaul the way a sick switch fabric
does — duplicated, replayed, corrupted and asymmetrically dropped
control traffic, plus gray APs that heartbeat while their data path
rots.  They pair with the runtime safety monitors in
:mod:`repro.invariants`.

Determinism contract: every random draw a plan makes comes from named
``RngRegistry`` streams (``faults/...``), so identical seeds yield
identical fault traces — and the injector only draws at execution time
from streams whose labels are derived from plan fields, so two runs of
the same (seed, plan) pair produce byte-identical event logs and
byte-identical protocol behaviour.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ApCrash,
    ControllerCrash,
    ControllerRestart,
    CsiBlackout,
    FaultPlan,
    GrayFailure,
    LinkJitter,
    MsgCorruption,
    MsgDuplication,
    OneWayPartition,
    Partition,
    StaleReplay,
)

__all__ = [
    "ApCrash",
    "ControllerCrash",
    "ControllerRestart",
    "CsiBlackout",
    "FaultInjector",
    "FaultPlan",
    "GrayFailure",
    "LinkJitter",
    "MsgCorruption",
    "MsgDuplication",
    "OneWayPartition",
    "Partition",
    "StaleReplay",
]
