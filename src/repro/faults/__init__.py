"""Deterministic fault injection for the WGTT testbed.

``repro.faults`` turns the simulator into a chaos rig: a
:class:`FaultPlan` is a declarative, seed-reproducible schedule of
faults (AP crash/restart, backhaul partition/heal, per-link delay
jitter with reordering, CSI-report suppression), and a
:class:`FaultInjector` arms a plan against a built testbed, executing
each fault on the discrete-event engine and logging an exact trace.

Determinism contract: every random draw a plan makes comes from named
``RngRegistry`` streams (``faults/...``), so identical seeds yield
identical fault traces — and the injector never draws at execution
time, so two runs of the same (seed, plan) pair produce byte-identical
event logs and byte-identical protocol behaviour.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ApCrash,
    CsiBlackout,
    FaultPlan,
    LinkJitter,
    Partition,
)

__all__ = [
    "ApCrash",
    "CsiBlackout",
    "FaultInjector",
    "FaultPlan",
    "LinkJitter",
    "Partition",
]
