"""Switching accuracy (paper Table 2).

The paper defines switching accuracy as the fraction of time a handover
scheme has the client attached to the *optimal* AP — the one with the
maximal instantaneous ESNR. The oracle side samples the channel through
the side-effect-free probe API, so measuring accuracy never perturbs
the run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.scenarios.testbed import Testbed
from repro.sim.engine import MS, Timer


class SwitchingAccuracyMeter:
    """Periodically compares the serving AP against the ESNR oracle."""

    def __init__(
        self,
        testbed: Testbed,
        client_index: int = 0,
        sample_period_us: int = 10 * MS,
    ):
        self._testbed = testbed
        self._client_index = client_index
        self._period = sample_period_us
        #: (time_us, serving_ap, best_ap) samples.
        self.samples: List[Tuple[int, Optional[str], str]] = []
        self._timer = Timer(testbed.sim, self._sample)
        self._timer.start(sample_period_us)

    def _sample(self) -> None:
        serving = self._testbed.serving_ap_of(self._client_index)
        best = self._testbed.best_ap_ground_truth(
            self._client_index, self._testbed.sim.now
        )
        self.samples.append((self._testbed.sim.now, serving, best))
        self._timer.start(self._period)

    def stop(self) -> None:
        self._timer.stop()

    def accuracy(self) -> float:
        """Fraction of samples where serving == oracle-best."""
        if not self.samples:
            return 0.0
        hits = sum(1 for _, serving, best in self.samples if serving == best)
        return hits / len(self.samples)

    def accuracy_over(self, start_us: int, end_us: int) -> float:
        window = [
            (serving, best)
            for t, serving, best in self.samples
            if start_us <= t < end_us
        ]
        if not window:
            return 0.0
        return sum(1 for s, b in window if s == b) / len(window)
