"""Measurement: accuracy, capacity loss, rate logs, statistics."""

from repro.metrics.accuracy import SwitchingAccuracyMeter
from repro.metrics.capacity import CapacityLossMeter, selector_capacity_loss_mbps
from repro.obs.recorders import RateUsageLog, UplinkLossMeter
from repro.metrics.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    std,
    summarize,
)
from repro.metrics.textplot import cdf_strip, series_panel, sparkline, timeline

__all__ = [
    "SwitchingAccuracyMeter",
    "CapacityLossMeter",
    "selector_capacity_loss_mbps",
    "RateUsageLog",
    "UplinkLossMeter",
    "cdf_points",
    "mean",
    "median",
    "percentile",
    "std",
    "summarize",
    "cdf_strip",
    "series_panel",
    "sparkline",
    "timeline",
]
