"""Terminal rendering for the evaluation's timeseries and CDFs.

The paper's figures are line plots; in a terminal library the honest
equivalents are sparklines, bar strips, and step timelines. Examples
and the CLI use these so a run's story is visible without matplotlib.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float], lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-line block-character plot of a series."""
    values = list(values)
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo or 1.0
    out = []
    for value in values:
        level = int((value - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[max(0, min(len(_BLOCKS) - 1, level))])
    return "".join(out)


def series_panel(
    series: Dict[str, Sequence[float]],
    width_label: int = 10,
    hi: Optional[float] = None,
) -> str:
    """Several labelled sparklines on a shared scale."""
    if not series:
        return ""
    ceiling = hi
    if ceiling is None:
        ceiling = max((max(v) for v in series.values() if len(v)), default=1.0)
    lines = []
    for label in series:
        values = series[label]
        peak = max(values) if len(values) else 0.0
        lines.append(
            f"{label:<{width_label}} {sparkline(values, 0.0, ceiling)}"
            f"  (peak {peak:.1f})"
        )
    return "\n".join(lines)


def timeline(
    events: Sequence[Tuple[float, str]],
    duration: float,
    slots: int = 60,
    unknown: str = ".",
) -> str:
    """Step-function timeline: which label was active in each slot.

    ``events`` are (time, label) change points; labels are rendered by
    their final character (``ap3`` -> ``3``), matching the association
    panels under the paper's Figures 14/15/22.
    """
    if duration <= 0:
        return ""
    ordered = sorted(events)
    out = []
    index = -1
    for slot in range(slots):
        t = slot * duration / slots
        while index + 1 < len(ordered) and ordered[index + 1][0] <= t:
            index += 1
        if index < 0:
            out.append(unknown)
        else:
            label = ordered[index][1]
            out.append(label[-1] if label else unknown)
    return "".join(out)


def cdf_strip(
    values: Sequence[float], percentiles: Sequence[int] = (10, 50, 85, 90),
) -> str:
    """Compact textual CDF summary: 'p50=...  p85=...' style."""
    if not values:
        return "(no samples)"
    ordered = sorted(values)

    def pct(q: int) -> float:
        position = min(len(ordered) - 1, int(q / 100 * len(ordered)))
        return ordered[position]

    return "  ".join(f"p{q}={pct(q):.1f}" for q in percentiles)
