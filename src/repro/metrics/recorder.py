"""Run-time recorders that hook into the MAC layer.

:class:`RateUsageLog` captures every (time, MCS, #MPDUs) an AP uses
towards a client — the data behind the link bit-rate CDF (Figure 16).
:class:`UplinkLossMeter` tracks windowed uplink datagram loss for the
multi-client uplink study (Figure 18).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.scenarios.testbed import Testbed
from repro.sim.engine import SECOND


class RateUsageLog:
    """Collects transmit-rate usage across all APs of a testbed."""

    def __init__(self, testbed: Testbed, client_id: str = None):
        self._client_filter = client_id
        #: (time_us, ap_id, mcs_index, rate_bps, mpdu_count)
        self.entries: List[Tuple[int, str, int, int, int]] = []
        devices = (
            {ap_id: ap.device for ap_id, ap in testbed.wgtt_aps.items()}
            if testbed.wgtt_aps
            else {ap_id: ap.device for ap_id, ap in testbed.baseline_aps.items()}
        )
        for ap_id, device in devices.items():
            self._hook(testbed, ap_id, device)

    def _hook(self, testbed: Testbed, ap_id: str, device) -> None:
        previous = device.on_rate_used

        def on_rate(peer, mcs, count, _prev=previous, _ap=ap_id):
            if self._client_filter is None or peer == self._client_filter:
                self.entries.append(
                    (testbed.sim.now, _ap, mcs.index, mcs.data_rate_bps, count)
                )
            _prev(peer, mcs, count)

        device.on_rate_used = on_rate

    def rates_mbps(self, weight_by_mpdus: bool = True) -> List[float]:
        """The observed bit-rate sample set for the CDF."""
        values: List[float] = []
        for _, _, _, rate_bps, count in self.entries:
            repeat = count if weight_by_mpdus else 1
            values.extend([rate_bps / 1e6] * repeat)
        return values


class UplinkLossMeter:
    """Windowed uplink loss per client, from source/sink counters."""

    def __init__(self, sim, source, sink, bin_us: int = SECOND):
        self._sim = sim
        self._source = source
        self._sink = sink
        self.bin_us = bin_us
        self._last_sent = 0
        self._last_received = 0
        #: (time_us, loss_rate) per bin.
        self.series: List[Tuple[int, float]] = []

    def sample(self) -> None:
        """Close the current bin; call once per bin interval."""
        sent = self._source.packets_sent
        received = self._sink.packets_received()
        delta_sent = sent - self._last_sent
        delta_received = received - self._last_received
        self._last_sent, self._last_received = sent, received
        if delta_sent <= 0:
            loss = 0.0
        else:
            loss = max(0.0, 1.0 - delta_received / delta_sent)
        self.series.append((self._sim.now, loss))

    def loss_rates(self) -> List[float]:
        return [loss for _, loss in self.series]
