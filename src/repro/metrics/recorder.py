"""Backwards-compatibility shim: the recorders moved to ``repro.obs``.

:class:`RateUsageLog`, :class:`UplinkLossMeter`, :class:`FailoverAudit`,
:class:`CrashRecovery`, and :class:`HaAudit` now live in
:mod:`repro.obs.recorders`, re-built as consumers of the obs event
stream (no more monkey-patched device hooks).  Their public results
methods are unchanged; import from either path.
"""

from repro.obs.recorders import (
    CrashRecovery,
    FailoverAudit,
    HaAudit,
    RateUsageLog,
    UplinkLossMeter,
)

__all__ = [
    "RateUsageLog",
    "UplinkLossMeter",
    "CrashRecovery",
    "FailoverAudit",
    "HaAudit",
]
