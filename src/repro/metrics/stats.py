"""Small statistics helpers shared by the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, probability) pairs, sorted by value."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    return [(value, (i + 1) / n) for i, value in enumerate(data)]


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return float(np.mean(np.asarray(values, dtype=float)))


def std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    return float(np.std(np.asarray(values, dtype=float), ddof=1))


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    return float(np.median(np.asarray(values, dtype=float)))


def summarize(values: Sequence[float]) -> dict:
    """Mean / std / min / median / max in one dict (for table rows)."""
    if not values:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "median": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=float)
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
    }
