"""Channel-capacity loss (paper Figures 4 and 21).

The capacity loss of a handover scheme at an instant is the gap between
the best achievable link rate (the max over APs of the delivery-
probability-weighted PHY rate) and the rate achievable through the AP
actually serving the client. Figure 4 integrates this over a drive for
stock 802.11r; Figure 21 evaluates it for the WGTT selector as a
function of the selection window W, by replaying recorded ESNR traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.phy.per import best_rate_bps
from repro.scenarios.testbed import Testbed
from repro.sim.engine import MS, Timer


class CapacityLossMeter:
    """Samples best-vs-serving achievable rate during a live run."""

    def __init__(
        self,
        testbed: Testbed,
        client_index: int = 0,
        sample_period_us: int = 20 * MS,
    ):
        self._testbed = testbed
        self._client_index = client_index
        self._period = sample_period_us
        #: (time_us, best_rate_bps, serving_rate_bps)
        self.samples: List[Tuple[int, float, float]] = []
        self._timer = Timer(testbed.sim, self._sample)
        self._timer.start(sample_period_us)

    def _sample(self) -> None:
        testbed, now = self._testbed, self._testbed.sim.now
        client_id = testbed.clients[self._client_index].client_id
        serving = testbed.serving_ap_of(self._client_index)
        best_rate, serving_rate = 0.0, 0.0
        if testbed.config.batch_phy:
            # One fused probe + stacked PHY prewarm for the whole AP
            # set; the per-AP ``best_rate_bps`` calls below then hit
            # the identity memos (bit-identical values either way).
            from repro.channel.link_batch import probe_snapshots
            from repro.phy.batch import prewarm_best_rate

            entries = [
                (testbed.channel.link(ap_id, client_id), ap_id)
                for ap_id in testbed.ap_ids
            ]
            snaps = probe_snapshots(now, entries)
            prewarm_best_rate(snaps)
            for ap_id, snap in zip(testbed.ap_ids, snaps):
                rate = best_rate_bps(snap)
                best_rate = max(best_rate, rate)
                if ap_id == serving:
                    serving_rate = rate
        else:
            for ap_id in testbed.ap_ids:
                link = testbed.channel.link(ap_id, client_id)
                rate = best_rate_bps(
                    link.probe_subcarrier_snr_db(now, tx_id=ap_id)
                )
                best_rate = max(best_rate, rate)
                if ap_id == serving:
                    serving_rate = rate
        self.samples.append((now, best_rate, serving_rate))
        self._timer.start(self._period)

    def stop(self) -> None:
        self._timer.stop()

    def mean_loss_mbps(self) -> float:
        """Average capacity loss over the sampled run, in Mbit/s."""
        if not self.samples:
            return 0.0
        losses = [(best - serving) for _, best, serving in self.samples]
        return sum(losses) / len(losses) / 1e6

    def mean_best_mbps(self) -> float:
        if not self.samples:
            return 0.0
        return sum(best for _, best, _ in self.samples) / len(self.samples) / 1e6


def selector_capacity_loss_mbps(
    esnr_trace: Dict[str, Sequence[Tuple[int, float]]],
    rate_trace: Dict[str, Sequence[Tuple[int, float]]],
    window_us: int,
    decision_period_us: int = 2 * MS,
    hysteresis_us: int = 0,
) -> float:
    """Emulation-based window-size study (paper §5.3.1, Figure 21).

    Replays recorded per-AP ESNR readings through the median-window
    selector at a given W and scores the chosen AP against the best
    achievable rate at each decision instant. ``esnr_trace`` maps AP id
    to (time_us, esnr_db) readings; ``rate_trace`` maps AP id to
    (time_us, achievable_rate_bps) ground truth sampled densely.
    """
    from repro.core.selection import ApSelector

    selector = ApSelector(window_us)
    events: List[Tuple[int, str, float]] = []
    for ap_id, series in esnr_trace.items():
        for time_us, esnr in series:
            events.append((time_us, ap_id, esnr))
    events.sort()
    if not events:
        return 0.0

    def rate_at(ap_id: str, time_us: int) -> float:
        series = rate_trace[ap_id]
        # Series are dense and sorted: binary search for nearest.
        lo, hi = 0, len(series) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if series[mid][0] < time_us:
                lo = mid + 1
            else:
                hi = mid
        return series[lo][1]

    start = events[0][0]
    end = events[-1][0]
    serving: Optional[str] = None
    last_switch = -(10**12)
    loss_sum, count = 0.0, 0
    index = 0
    for now in range(start, end, decision_period_us):
        while index < len(events) and events[index][0] <= now:
            _, ap_id, esnr = events[index]
            selector.record("c", ap_id, events[index][0], esnr)
            index += 1
        if serving is None or hysteresis_us == 0 or now - last_switch >= hysteresis_us:
            choice = selector.best_ap("c", now, incumbent=serving)
            if choice is not None and choice != serving:
                serving = choice
                last_switch = now
        if serving is None:
            continue
        best = max(rate_at(ap_id, now) for ap_id in rate_trace)
        loss_sum += best - rate_at(serving, now)
        count += 1
    if count == 0:
        return 0.0
    return loss_sum / count / 1e6
