"""IP-in-IP tunneling between controller and APs (paper §3.1.3, §3.2.2).

Downlink: the controller cannot rewrite a datagram's addresses (the AP
must still see which *client* it is for), so it wraps the datagram in
an outer IP header addressed to the AP. Uplink: an AP that hears a
client frame wraps it in UDP/IP/802.3 headers addressed to the
controller, with itself as source, so the controller knows *which* AP
overheard each copy.
"""

from __future__ import annotations

from repro.net.packet import Packet

#: Outer IP header for downlink IP-in-IP encapsulation.
DOWNLINK_TUNNEL_OVERHEAD = 20
#: Outer UDP/IP + 802.3 headers for uplink AP→controller forwarding.
UPLINK_TUNNEL_OVERHEAD = 20 + 8 + 14


def encapsulate_downlink(packet: Packet, ap_id: str) -> Packet:
    """Address a downlink datagram to an AP without touching it.

    The same inner packet object is shared across all APs it is fanned
    out to; only the (tiny) tunnel header differs, and we account for
    it in the wire-size arithmetic rather than by copying.
    """
    packet.tunnel_dst = ap_id
    return packet


def tunnel_wire_size(packet: Packet, downlink: bool = True) -> int:
    """Bytes on the backhaul wire for a tunneled datagram."""
    overhead = DOWNLINK_TUNNEL_OVERHEAD if downlink else UPLINK_TUNNEL_OVERHEAD
    return packet.size_bytes + overhead


def decapsulate(packet: Packet) -> Packet:
    """Strip the tunnel annotation, restoring the plain datagram."""
    packet.tunnel_dst = None
    return packet
