"""Packet queues inside the AP (paper Figure 7).

A WGTT AP buffers packets in several places: the Click-level cyclic
queue (in :mod:`repro.core.cyclic_queue`), the mac80211 software queue,
the driver's transmit queue, and the NIC's internal hardware queue.
The baseline AP has the same stack minus the cyclic queue. Backlog in
these queues is exactly what makes naive switching slow — the paper
measures 1,600–2,000 backlogged packets at 50–90 Mbit/s offered load —
so the queue model matters to the headline result.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

from repro.net.packet import Packet


@dataclass
class QueueStats:
    """Occupancy and drop accounting for one queue."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    flushed: int = 0
    high_watermark: int = 0

    def snapshot(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "flushed": self.flushed,
            "high_watermark": self.high_watermark,
        }


class DropTailQueue:
    """Bounded FIFO with drop-tail semantics.

    ``capacity`` is in packets; the NIC hardware queue and the mac80211
    queue are both packet-limited on the paper's TP-Link hardware.
    """

    def __init__(self, capacity: int, name: str = ""):
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = int(capacity)
        self.name = name
        self._items: Deque[Packet] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def enqueue(self, packet: Packet) -> bool:
        """Append; returns False (and counts a drop) when full."""
        if self.full:
            self.stats.dropped += 1
            return False
        self._items.append(packet)
        self.stats.enqueued += 1
        if len(self._items) > self.stats.high_watermark:
            self.stats.high_watermark = len(self._items)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head, or None when empty."""
        if not self._items:
            return None
        self.stats.dequeued += 1
        return self._items.popleft()

    def peek(self) -> Optional[Packet]:
        return self._items[0] if self._items else None

    def flush(self) -> int:
        """Discard everything; returns how many packets went."""
        count = len(self._items)
        self._items.clear()
        self.stats.flushed += count
        return count

    def drain(self) -> list:
        """Remove and return everything, preserving order."""
        items = list(self._items)
        self._items.clear()
        self.stats.flushed += len(items)
        return items

    def remove_for_client(self, client_id: str) -> int:
        """Filter out packets destined to one client (the paper's
        driver-queue filtering when a stop(c) arrives)."""
        kept = [p for p in self._items if p.dst != client_id]
        removed = len(self._items) - len(kept)
        self._items.clear()
        self._items.extend(kept)
        self.stats.flushed += removed
        return removed

    def bytes_queued(self) -> int:
        return sum(p.size_bytes for p in self._items)


class ByteLimitedQueue(DropTailQueue):
    """FIFO bounded by bytes instead of packets (socket-buffer style)."""

    def __init__(self, capacity_bytes: int, name: str = ""):
        super().__init__(capacity=1, name=name)
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)

    @property
    def full(self) -> bool:  # type: ignore[override]
        return self.bytes_queued() >= self.capacity_bytes

    def enqueue(self, packet: Packet) -> bool:
        if self.bytes_queued() + packet.size_bytes > self.capacity_bytes:
            self.stats.dropped += 1
            return False
        self._items.append(packet)
        self.stats.enqueued += 1
        if len(self._items) > self.stats.high_watermark:
            self.stats.high_watermark = len(self._items)
        return True
