"""Wired networking substrate: packets, backhaul, tunnels, queues."""

from repro.net.backhaul import (
    CONTROL_LATENCY_US,
    DEFAULT_LATENCY_US,
    BackhaulStats,
    EthernetBackhaul,
)
from repro.net.packet import (
    IP_HEADER_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    IpIdAllocator,
    Packet,
)
from repro.net.queues import ByteLimitedQueue, DropTailQueue, QueueStats
from repro.net.tunnel import (
    DOWNLINK_TUNNEL_OVERHEAD,
    UPLINK_TUNNEL_OVERHEAD,
    decapsulate,
    encapsulate_downlink,
    tunnel_wire_size,
)

__all__ = [
    "CONTROL_LATENCY_US",
    "DEFAULT_LATENCY_US",
    "BackhaulStats",
    "EthernetBackhaul",
    "IP_HEADER_BYTES",
    "TCP_HEADER_BYTES",
    "UDP_HEADER_BYTES",
    "IpIdAllocator",
    "Packet",
    "ByteLimitedQueue",
    "DropTailQueue",
    "QueueStats",
    "DOWNLINK_TUNNEL_OVERHEAD",
    "UPLINK_TUNNEL_OVERHEAD",
    "decapsulate",
    "encapsulate_downlink",
    "tunnel_wire_size",
]
