"""The packet object that moves through every layer of the simulation.

One :class:`Packet` instance represents an IP datagram end to end: the
content server creates it, the controller tunnels it to APs, the MAC
wraps it in an MPDU, and the client's transport layer consumes it.
Layers annotate rather than copy, so identity comparisons ("is this the
same packet the other AP already has?") are cheap and exact.
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Bytes of IP header assumed on every datagram.
IP_HEADER_BYTES = 20
#: Bytes of UDP header.
UDP_HEADER_BYTES = 8
#: Bytes of TCP header (no options).
TCP_HEADER_BYTES = 20

_packet_counter = itertools.count(1)


class Packet:
    """An IP datagram.

    Attributes
    ----------
    src / dst:
        Node ids of the original endpoints (e.g. ``"server"`` and
        ``"client0"``); tunneling never rewrites these.
    size_bytes:
        Total IP datagram size including headers.
    protocol:
        ``"udp"``, ``"tcp"``, or ``"arp"``.
    flow_id:
        Transport flow this packet belongs to, for demultiplexing.
    seq:
        Transport-layer sequence number (meaning depends on protocol).
    ip_id:
        16-bit IP identification, incremented per source; together with
        the source address this is the controller's de-duplication key.
    created_us:
        Simulation time the packet was created (for latency metrics).
    tunnel_dst:
        When IP-in-IP encapsulated, the AP/controller hop the outer
        header addresses; ``None`` on the inner/plain datagram.
    """

    __slots__ = (
        "uid",
        "src",
        "dst",
        "size_bytes",
        "protocol",
        "flow_id",
        "seq",
        "ip_id",
        "created_us",
        "tunnel_dst",
        "meta",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        protocol: str = "udp",
        flow_id: Optional[str] = None,
        seq: int = 0,
        ip_id: int = 0,
        created_us: int = 0,
    ):
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        self.uid = next(_packet_counter)
        self.src = src
        self.dst = dst
        self.size_bytes = int(size_bytes)
        self.protocol = protocol
        self.flow_id = flow_id
        self.seq = int(seq)
        self.ip_id = int(ip_id) & 0xFFFF
        self.created_us = int(created_us)
        self.tunnel_dst: Optional[str] = None
        self.meta: dict = {}

    def dedup_key(self) -> int:
        """48-bit key from source address and IP-ID (paper §3.2.2).

        The source id is hashed into 32 bits standing in for the IPv4
        source address, and combined with the 16-bit IP identification.
        """
        src_bits = hash(self.src) & 0xFFFFFFFF
        return (src_bits << 16) | self.ip_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.uid} {self.protocol} {self.src}->{self.dst} "
            f"{self.size_bytes}B seq={self.seq})"
        )


class IpIdAllocator:
    """Per-source 16-bit rolling IP identification counter."""

    def __init__(self):
        self._next = {}

    def allocate(self, src: str) -> int:
        value = self._next.get(src, 0)
        self._next[src] = (value + 1) & 0xFFFF
        return value
