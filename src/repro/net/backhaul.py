"""The wired Ethernet backhaul between the controller and the APs.

All WGTT control traffic — CSI reports, stop/start/ack switching
messages, forwarded block ACKs, association sync, tunneled data — rides
this network. It is modelled as a switched full-duplex gigabit LAN:
each node has its own uplink port whose serialization is FIFO, plus a
fixed per-hop latency for propagation, switching, and the receiving
host's interrupt/user-space handling. The paper's control packets are
*prioritized* inside the AP; we expose that as a separate low-latency
delivery path (:meth:`EthernetBackhaul.send_control`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.sim.engine import Simulator

#: Default one-way latency: wire + switch + kernel/user handoff.
DEFAULT_LATENCY_US = 300
#: Prioritized control-packet path: bypasses data queues (paper §3.1.2).
CONTROL_LATENCY_US = 150
#: Gigabit Ethernet.
DEFAULT_BANDWIDTH_BPS = 1_000_000_000


@dataclass
class BackhaulStats:
    """Counters for traffic accounting on the backhaul."""

    messages: int = 0
    bytes: int = 0
    control_messages: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, size_bytes: int, control: bool) -> None:
        self.messages += 1
        self.bytes += size_bytes
        if control:
            self.control_messages += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class EthernetBackhaul:
    """Message transport between controller and APs.

    Receivers register a handler taking ``(src_id, kind, payload)``;
    ``payload`` is an arbitrary Python object (a Packet, a CsiReport, a
    control-message dataclass...). ``kind`` routes it inside the node.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_us: int = DEFAULT_LATENCY_US,
        control_latency_us: int = CONTROL_LATENCY_US,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        loss_rate: float = 0.0,
        loss_rng=None,
    ):
        """``loss_rate`` drops each message independently — Ethernet is
        effectively lossless in the deployment, but WGTT's 30 ms stop
        retransmission exists exactly because control packets *can* be
        lost (paper §3.1.2); fault-injection tests use this."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self._sim = sim
        self.latency_us = latency_us
        self.control_latency_us = control_latency_us
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._handlers: Dict[str, Callable[[str, str, object], None]] = {}
        self._port_busy_until: Dict[str, int] = {}
        self.stats = BackhaulStats()
        self.dropped = 0

    def register(self, node_id: str, handler: Callable[[str, str, object], None]):
        """Attach a node to the LAN."""
        if node_id in self._handlers:
            raise ValueError(f"{node_id!r} already attached to backhaul")
        self._handlers[node_id] = handler

    def is_attached(self, node_id: str) -> bool:
        return node_id in self._handlers

    def send(
        self,
        src_id: str,
        dst_id: str,
        kind: str,
        payload: object,
        size_bytes: int = 128,
        control: bool = False,
    ) -> None:
        """Deliver ``payload`` to ``dst_id`` after serialization + latency.

        Control messages take the prioritized path: they skip the data
        FIFO's queueing backlog and use the shorter handling latency.
        """
        if dst_id not in self._handlers:
            raise KeyError(f"unknown backhaul destination {dst_id!r}")
        self.stats.record(kind, size_bytes, control)
        if self.loss_rate > 0.0 and self._loss_rng is not None:
            if self._loss_rng.random() < self.loss_rate:
                self.dropped += 1
                return
        serialization_us = int(size_bytes * 8 / self.bandwidth_bps * 1e6)
        if control:
            delay = self.control_latency_us + serialization_us
        else:
            # FIFO per sender port: messages serialize one at a time.
            start = max(self._sim.now, self._port_busy_until.get(src_id, 0))
            self._port_busy_until[src_id] = start + serialization_us
            delay = (start - self._sim.now) + serialization_us + self.latency_us
        handler = self._handlers[dst_id]
        self._sim.schedule(delay, lambda: handler(src_id, kind, payload))

    def send_control(
        self, src_id: str, dst_id: str, kind: str, payload: object,
        size_bytes: int = 64,
    ) -> None:
        """Shorthand for the prioritized control path."""
        self.send(src_id, dst_id, kind, payload, size_bytes, control=True)

    def broadcast(
        self,
        src_id: str,
        kind: str,
        payload: object,
        size_bytes: int = 128,
        control: bool = False,
    ) -> None:
        """Deliver to every attached node except the sender."""
        for node_id in list(self._handlers):
            if node_id != src_id:
                self.send(src_id, node_id, kind, payload, size_bytes, control)
