"""The wired Ethernet backhaul between the controller and the APs.

All WGTT control traffic — CSI reports, stop/start/ack switching
messages, forwarded block ACKs, association sync, tunneled data — rides
this network. It is modelled as a switched full-duplex gigabit LAN:
each node has its own uplink port whose serialization is FIFO, plus a
fixed per-hop latency for propagation, switching, and the receiving
host's interrupt/user-space handling. The paper's control packets are
*prioritized* inside the AP; we expose that as a separate low-latency
delivery path (:meth:`EthernetBackhaul.send_control`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.rng import seeded_generator

#: Default one-way latency: wire + switch + kernel/user handoff.
DEFAULT_LATENCY_US = 300
#: Prioritized control-packet path: bypasses data queues (paper §3.1.2).
CONTROL_LATENCY_US = 150
#: Gigabit Ethernet.
DEFAULT_BANDWIDTH_BPS = 1_000_000_000
#: Seed for the loss stream constructed when the caller sets a
#: ``loss_rate`` without supplying ``loss_rng`` — loss must never be
#: silently disabled, and it must stay reproducible.
DEFAULT_LOSS_SEED = 0xB10C1055

#: Message kinds that model a reliable (TCP-like) transport: exempt
#: from the Bernoulli loss knob, though injected faults (node down,
#: partition) still drop them.  Keeping the exemption kind-based means
#: the loss stream's draw sequence over data/control traffic is
#: unchanged whether liveness or HA messaging is active.
#: The inter-shard handoff kinds ("shard-handoff", "shard-handoff-ack")
#: are deliberately NOT in this set: a client-state transfer between
#: shard controllers is subject to loss and the message-level adversary
#: exactly like the switch handshake it resembles, and the shard
#: manager carries its own ack + retransmission + abandon schedule
#: (see repro.shard.handoff) instead of leaning on transport magic.
RELIABLE_KINDS: FrozenSet[str] = frozenset(
    {"heartbeat", "ctrl-heartbeat", "ha-checkpoint", "ctrl-takeover"}
)

#: Message kinds whose "tx" trace events are per-packet volume: they
#: are tagged ``detail`` so a default (non-detail) traced drive keeps
#: only the protocol-level control handshakes.
_DETAIL_KINDS: FrozenSet[str] = frozenset(
    {"data", "csi", "uplink", "ba-fwd", "heartbeat", "ctrl-heartbeat", "keepalive"}
)


@dataclass
class BackhaulStats:
    """Counters for traffic accounting on the backhaul."""

    messages: int = 0
    bytes: int = 0
    control_messages: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Messages swallowed by injected faults (node down / partition),
    #: kept apart from the random-loss ``dropped`` counter.
    fault_dropped: int = 0
    # -- adversary accounting (all zero unless an adversary is armed) --
    #: Extra copies injected by :class:`~repro.faults.plan.MsgDuplication`.
    duplicated: int = 0
    #: Old messages re-delivered by a :class:`StaleReplay` window.
    replayed: int = 0
    #: Messages corrupted (checksum fail) and dropped, with accounting.
    corrupt_dropped: int = 0
    #: Messages swallowed by a one-way (directed) partition.
    oneway_dropped: int = 0
    #: Messages lost to a gray-failing node's degraded backhaul.
    gray_dropped: int = 0

    def record(self, kind: str, size_bytes: int, control: bool) -> None:
        self.messages += 1
        self.bytes += size_bytes
        if control:
            self.control_messages += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class _Adversary:
    """Message-level adversary state, created lazily on first use.

    Fault-free runs never instantiate this: the one
    ``self._adversary is None`` load in :meth:`EthernetBackhaul.send`
    is the whole cost, mirroring the ``_fault_blocked`` empty fast
    path — which is what keeps adversary-off runs bit-identical.
    """

    __slots__ = (
        "duplication",
        "corruption",
        "oneway",
        "captures",
        "degraded",
        "next_handle",
    )

    def __init__(self) -> None:
        #: handle -> (kinds|None, probability, copies, rng)
        self.duplication: Dict[int, tuple] = {}
        #: handle -> (kinds|None, probability, rng)
        self.corruption: Dict[int, tuple] = {}
        #: handle -> (src, dst): directed drop.
        self.oneway: Dict[int, Tuple[str, str]] = {}
        #: handle -> (kinds|None, cap, buffer) for stale replay.
        self.captures: Dict[int, tuple] = {}
        #: node_id -> (extra_latency_us, loss_rate, rng): gray failure.
        self.degraded: Dict[str, tuple] = {}
        self.next_handle = 1

    def empty(self) -> bool:
        return not (
            self.duplication
            or self.corruption
            or self.oneway
            or self.captures
            or self.degraded
        )

    def handle(self) -> int:
        value = self.next_handle
        self.next_handle += 1
        return value


class EthernetBackhaul:
    """Message transport between controller and APs.

    Receivers register a handler taking ``(src_id, kind, payload)``;
    ``payload`` is an arbitrary Python object (a Packet, a CsiReport, a
    control-message dataclass...). ``kind`` routes it inside the node.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_us: int = DEFAULT_LATENCY_US,
        control_latency_us: int = CONTROL_LATENCY_US,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        loss_rate: float = 0.0,
        loss_rng=None,
    ):
        """``loss_rate`` drops each message independently — Ethernet is
        effectively lossless in the deployment, but WGTT's 30 ms stop
        retransmission exists exactly because control packets *can* be
        lost (paper §3.1.2); fault-injection tests use this.

        ``loss_rate == 1.0`` (a black-holed wire) is a legal fault to
        inject; only values outside ``[0, 1]`` are rejected.  When no
        ``loss_rng`` is supplied a default seeded stream is built on
        first use, so a non-zero ``loss_rate`` is never silently a
        no-op.
        """
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        self._sim = sim
        self.latency_us = latency_us
        self.control_latency_us = control_latency_us
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._handlers: Dict[str, Callable[[str, str, object], None]] = {}
        self._port_busy_until: Dict[str, int] = {}
        self.stats = BackhaulStats()
        self.dropped = 0
        # -- fault-injection state (all empty in fault-free runs) -----
        #: Endpoints whose NIC is dark (crashed AP): anything they send
        #: or should receive vanishes silently.
        self._down_nodes: set = set()
        #: Active partitions: id -> (side_a, side_b); a message crossing
        #: from one side to the other is dropped.
        self._partitions: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        self._next_partition_id = 1
        #: Per-directed-link extra-delay jitter: (src, dst) -> (max_us,
        #: rng).  Varying extra delays reorder messages naturally.
        self._link_jitter: Dict[
            Tuple[str, str], Tuple[int, np.random.Generator]
        ] = {}
        #: Message-level adversary (duplication / replay / corruption /
        #: one-way partitions / gray failure).  ``None`` until the
        #: first adversary window opens; dropped back to ``None`` when
        #: the last one closes, so idle runs pay one attribute load.
        self._adversary: Optional[_Adversary] = None
        #: Latched True the first time an adversary window is armed —
        #: metric collectors key on this so adversary counters only
        #: appear in runs that actually used the adversary.
        self.adversary_armed = False

    def register(self, node_id: str, handler: Callable[[str, str, object], None]):
        """Attach a node to the LAN."""
        if node_id in self._handlers:
            raise ValueError(f"{node_id!r} already attached to backhaul")
        self._handlers[node_id] = handler

    def is_attached(self, node_id: str) -> bool:
        return node_id in self._handlers

    # ------------------------------------------------------------------
    # fault injection (crash / partition / jitter)
    # ------------------------------------------------------------------

    def set_node_down(self, node_id: str, down: bool = True) -> None:
        """Silence an endpoint (crashed AP): its port neither sends nor
        receives until brought back up.  Registration is untouched —
        the node keeps its handler for when it restarts."""
        if down:
            self._down_nodes.add(node_id)
        else:
            self._down_nodes.discard(node_id)

    def is_node_down(self, node_id: str) -> bool:
        return node_id in self._down_nodes

    def partition(
        self, side_a: Iterable[str], side_b: Iterable[str]
    ) -> int:
        """Install a partition between two endpoint sets; messages that
        would cross it are dropped.  Returns a handle for :meth:`heal`."""
        a, b = frozenset(side_a), frozenset(side_b)
        if a & b:
            raise ValueError("partition sides must be disjoint")
        partition_id = self._next_partition_id
        self._next_partition_id += 1
        self._partitions[partition_id] = (a, b)
        return partition_id

    def heal(self, partition_id: Optional[int] = None) -> None:
        """Remove one partition (or all of them when id is None)."""
        if partition_id is None:
            self._partitions.clear()
        else:
            self._partitions.pop(partition_id, None)

    def partitioned(self, src_id: str, dst_id: str) -> bool:
        """True when an active partition separates the two endpoints."""
        for side_a, side_b in self._partitions.values():
            if (src_id in side_a and dst_id in side_b) or (
                src_id in side_b and dst_id in side_a
            ):
                return True
        return False

    def set_link_jitter(
        self,
        src_id: str,
        dst_id: str,
        jitter_us: int,
        rng: np.random.Generator,
    ) -> None:
        """Add uniform extra delay in ``[0, jitter_us]`` to every message
        on the directed link — enough variance reorders deliveries."""
        if jitter_us < 0:
            raise ValueError("jitter must be non-negative")
        self._link_jitter[(src_id, dst_id)] = (int(jitter_us), rng)

    def clear_link_jitter(
        self, src_id: Optional[str] = None, dst_id: Optional[str] = None
    ) -> None:
        """Remove jitter from one directed link, or from all links."""
        if src_id is None and dst_id is None:
            self._link_jitter.clear()
        else:
            self._link_jitter.pop((src_id, dst_id), None)

    # ------------------------------------------------------------------
    # message-level adversary (duplication / replay / corruption /
    # one-way partition / gray failure)
    # ------------------------------------------------------------------

    def _ensure_adversary(self) -> _Adversary:
        if self._adversary is None:
            self._adversary = _Adversary()
            self.adversary_armed = True
        return self._adversary

    def _maybe_drop_adversary(self) -> None:
        if self._adversary is not None and self._adversary.empty():
            self._adversary = None

    def set_duplication(
        self,
        kinds: Optional[FrozenSet[str]],
        probability: float,
        copies: int,
        rng: np.random.Generator,
    ) -> int:
        """Duplicate matching messages (prob. per message, ``copies``
        extra deliveries each).  Returns a handle for clearing."""
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if copies <= 0:
            raise ValueError("copies must be positive")
        adversary = self._ensure_adversary()
        handle = adversary.handle()
        adversary.duplication[handle] = (kinds, probability, copies, rng)
        return handle

    def clear_duplication(self, handle: int) -> None:
        if self._adversary is not None:
            self._adversary.duplication.pop(handle, None)
            self._maybe_drop_adversary()

    def set_corruption(
        self,
        kinds: Optional[FrozenSet[str]],
        probability: float,
        rng: np.random.Generator,
    ) -> int:
        """Corrupt matching messages with ``probability``; corrupted
        messages fail their checksum and are dropped with accounting."""
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        adversary = self._ensure_adversary()
        handle = adversary.handle()
        adversary.corruption[handle] = (kinds, probability, rng)
        return handle

    def clear_corruption(self, handle: int) -> None:
        if self._adversary is not None:
            self._adversary.corruption.pop(handle, None)
            self._maybe_drop_adversary()

    def partition_oneway(self, src_id: str, dst_id: str) -> int:
        """Drop everything on the *directed* link ``src -> dst`` while
        the reverse direction keeps flowing."""
        if src_id == dst_id:
            raise ValueError("src and dst must differ")
        adversary = self._ensure_adversary()
        handle = adversary.handle()
        adversary.oneway[handle] = (src_id, dst_id)
        return handle

    def heal_oneway(self, handle: int) -> None:
        if self._adversary is not None:
            self._adversary.oneway.pop(handle, None)
            self._maybe_drop_adversary()

    def oneway_blocked(self, src_id: str, dst_id: str) -> bool:
        """True when a one-way partition drops ``src -> dst`` traffic."""
        adversary = self._adversary
        if adversary is None or not adversary.oneway:
            return False
        return any(
            src == src_id and dst == dst_id
            for src, dst in adversary.oneway.values()
        )

    def start_replay_capture(
        self, kinds: Optional[FrozenSet[str]], count: int
    ) -> int:
        """Start recording matching *delivered* messages (up to
        ``count``) for later re-delivery via :meth:`replay_captured`."""
        if count <= 0:
            raise ValueError("count must be positive")
        adversary = self._ensure_adversary()
        handle = adversary.handle()
        adversary.captures[handle] = (kinds, int(count), [])
        return handle

    def replay_captured(self, handle: int) -> int:
        """Close a capture window and re-deliver everything it recorded
        (in capture order, after the normal path latency).  Replays are
        adversary deliveries: they skip loss, jitter, capture and
        duplication processing, but still respect crashed nodes and
        partitions.  Returns how many messages were re-injected."""
        if self._adversary is None:
            return 0
        entry = self._adversary.captures.pop(handle, None)
        self._maybe_drop_adversary()
        if entry is None:
            return 0
        _kinds, _cap, buffer = entry
        tracer = self._sim.obs.trace
        replayed = 0
        for offset, record in enumerate(buffer):
            src_id, dst_id, kind, payload, size_bytes, control = record
            if self._fault_blocked(src_id, dst_id) or self.oneway_blocked(
                src_id, dst_id
            ):
                continue
            handler = self._handlers.get(dst_id)
            if handler is None:
                continue
            self.stats.replayed += 1
            replayed += 1
            if tracer.active:
                tracer.emit(
                    "backhaul",
                    "replay-tx",
                    track=f"port/{src_id}",
                    detail=kind in _DETAIL_KINDS,
                    src=src_id,
                    dst=dst_id,
                    msg=kind,
                )
            delay = (
                self.control_latency_us if control else self.latency_us
            ) + offset
            self._sim.schedule(
                delay,
                lambda h=handler, s=src_id, k=kind, p=payload: h(s, k, p),
            )
        return replayed

    def set_node_degraded(
        self,
        node_id: str,
        extra_latency_us: int,
        loss_rate: float,
        rng: np.random.Generator,
    ) -> None:
        """Gray-fail a node: non-reliable messages to or from it pick
        up ``extra_latency_us`` and an extra Bernoulli ``loss_rate``,
        while heartbeats (the reliable class) keep flowing — the
        liveness table stays green while service rots."""
        if extra_latency_us < 0:
            raise ValueError("extra_latency_us must be non-negative")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        adversary = self._ensure_adversary()
        adversary.degraded[node_id] = (int(extra_latency_us), loss_rate, rng)

    def clear_node_degraded(self, node_id: str) -> None:
        if self._adversary is not None:
            self._adversary.degraded.pop(node_id, None)
            self._maybe_drop_adversary()

    def is_node_degraded(self, node_id: str) -> bool:
        adversary = self._adversary
        return adversary is not None and node_id in adversary.degraded

    def unreachable(self, src_id: str, dst_id: str) -> bool:
        """True when *anything* currently blocks ``src -> dst``: a dark
        endpoint, a symmetric partition, or a one-way partition.  The
        invariant checker uses this to excuse liveness-table lag."""
        return self._fault_blocked(src_id, dst_id) or self.oneway_blocked(
            src_id, dst_id
        )

    def _fault_blocked(self, src_id: str, dst_id: str) -> bool:
        if not self._down_nodes and not self._partitions:
            return False  # fault-free fast path
        if src_id in self._down_nodes or dst_id in self._down_nodes:
            return True
        return self.partitioned(src_id, dst_id)

    def _loss_draw(self) -> float:
        if self._loss_rng is None:
            self._loss_rng = seeded_generator(DEFAULT_LOSS_SEED)
        return self._loss_rng.random()

    def send(
        self,
        src_id: str,
        dst_id: str,
        kind: str,
        payload: object,
        size_bytes: int = 128,
        control: bool = False,
    ) -> None:
        """Deliver ``payload`` to ``dst_id`` after serialization + latency.

        Control messages take the prioritized path: they skip the data
        FIFO's queueing backlog and use the shorter handling latency.
        """
        if dst_id not in self._handlers:
            raise KeyError(f"unknown backhaul destination {dst_id!r}")
        self.stats.record(kind, size_bytes, control)
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "backhaul",
                "tx",
                track=f"port/{src_id}",
                detail=kind in _DETAIL_KINDS,
                src=src_id,
                dst=dst_id,
                msg=kind,
                bytes=size_bytes,
                control=control,
            )
        if self._fault_blocked(src_id, dst_id):
            self.stats.fault_dropped += 1
            if tracer.active:
                tracer.emit(
                    "backhaul",
                    "fault-drop",
                    track=f"port/{src_id}",
                    detail=kind in _DETAIL_KINDS,
                    src=src_id,
                    dst=dst_id,
                    msg=kind,
                )
            return
        adversary = self._adversary
        gray_extra_us = 0
        if adversary is not None:
            if adversary.oneway and self.oneway_blocked(src_id, dst_id):
                self.stats.oneway_dropped += 1
                if tracer.active:
                    tracer.emit(
                        "backhaul",
                        "oneway-drop",
                        track=f"port/{src_id}",
                        detail=kind in _DETAIL_KINDS,
                        src=src_id,
                        dst=dst_id,
                        msg=kind,
                    )
                return
            if adversary.degraded and kind not in RELIABLE_KINDS:
                entry = adversary.degraded.get(src_id)
                if entry is None:
                    entry = adversary.degraded.get(dst_id)
                if entry is not None:
                    extra_us, gray_loss, gray_rng = entry
                    if gray_loss > 0.0 and gray_rng.random() < gray_loss:
                        self.stats.gray_dropped += 1
                        if tracer.active:
                            tracer.emit(
                                "backhaul",
                                "gray-drop",
                                track=f"port/{src_id}",
                                detail=kind in _DETAIL_KINDS,
                                src=src_id,
                                dst=dst_id,
                                msg=kind,
                            )
                        return
                    gray_extra_us = extra_us
            if adversary.corruption:
                for c_kinds, c_prob, c_rng in adversary.corruption.values():
                    if c_kinds is not None and kind not in c_kinds:
                        continue
                    if c_rng.random() < c_prob:
                        self.stats.corrupt_dropped += 1
                        if tracer.active:
                            tracer.emit(
                                "backhaul",
                                "corrupt-drop",
                                track=f"port/{src_id}",
                                detail=kind in _DETAIL_KINDS,
                                src=src_id,
                                dst=dst_id,
                                msg=kind,
                            )
                        return
        # Liveness and HA traffic rides a reliable transport in a real
        # deployment (the paper's sta-sync uses per-peer TCP); exempting
        # those kinds from the scalar Bernoulli loss knob also keeps the
        # loss stream's draw sequence for data/control traffic identical
        # whether or not liveness/HA is running.  Injected faults
        # (crash, partition) do drop them — that is what the liveness
        # trackers on both sides detect.
        if self.loss_rate > 0.0 and kind not in RELIABLE_KINDS:
            if self._loss_draw() < self.loss_rate:
                self.dropped += 1
                if tracer.active:
                    tracer.emit(
                        "backhaul",
                        "loss-drop",
                        track=f"port/{src_id}",
                        src=src_id,
                        dst=dst_id,
                        msg=kind,
                    )
                return
        serialization_us = int(size_bytes * 8 / self.bandwidth_bps * 1e6)
        if control:
            delay = self.control_latency_us + serialization_us
        else:
            # FIFO per sender port: messages serialize one at a time.
            start = max(self._sim.now, self._port_busy_until.get(src_id, 0))
            self._port_busy_until[src_id] = start + serialization_us
            delay = (start - self._sim.now) + serialization_us + self.latency_us
        jitter = self._link_jitter.get((src_id, dst_id))
        if jitter is not None:
            max_us, rng = jitter
            if max_us > 0:
                delay += int(rng.integers(0, max_us + 1))
        delay += gray_extra_us
        handler = self._handlers[dst_id]
        if adversary is not None:
            if adversary.captures:
                for r_kinds, r_cap, r_buffer in adversary.captures.values():
                    if r_kinds is not None and kind not in r_kinds:
                        continue
                    if len(r_buffer) < r_cap:
                        r_buffer.append(
                            (src_id, dst_id, kind, payload, size_bytes, control)
                        )
            if adversary.duplication:
                for entry in adversary.duplication.values():
                    d_kinds, d_prob, d_copies, d_rng = entry
                    if d_kinds is not None and kind not in d_kinds:
                        continue
                    if d_rng.random() >= d_prob:
                        continue
                    for _ in range(d_copies):
                        self.stats.duplicated += 1
                        if tracer.active:
                            tracer.emit(
                                "backhaul",
                                "dup-tx",
                                track=f"port/{src_id}",
                                detail=kind in _DETAIL_KINDS,
                                src=src_id,
                                dst=dst_id,
                                msg=kind,
                            )
                        # Copies land shortly after the original with a
                        # varying skew, so they interleave with other
                        # in-flight traffic instead of arriving as a
                        # harmless back-to-back pair.
                        dup_delay = delay + 1 + int(d_rng.integers(0, 64))
                        self._sim.schedule(
                            dup_delay,
                            lambda h=handler: h(src_id, kind, payload),
                        )
        self._sim.schedule(delay, lambda: handler(src_id, kind, payload))

    def send_control(
        self, src_id: str, dst_id: str, kind: str, payload: object,
        size_bytes: int = 64,
    ) -> None:
        """Shorthand for the prioritized control path."""
        self.send(src_id, dst_id, kind, payload, size_bytes, control=True)

    def broadcast(
        self,
        src_id: str,
        kind: str,
        payload: object,
        size_bytes: int = 128,
        control: bool = False,
    ) -> None:
        """Deliver to every attached node except the sender."""
        for node_id in list(self._handlers):
            if node_id != src_id:
                self.send(src_id, node_id, kind, payload, size_bytes, control)
