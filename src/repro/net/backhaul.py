"""The wired Ethernet backhaul between the controller and the APs.

All WGTT control traffic — CSI reports, stop/start/ack switching
messages, forwarded block ACKs, association sync, tunneled data — rides
this network. It is modelled as a switched full-duplex gigabit LAN:
each node has its own uplink port whose serialization is FIFO, plus a
fixed per-hop latency for propagation, switching, and the receiving
host's interrupt/user-space handling. The paper's control packets are
*prioritized* inside the AP; we expose that as a separate low-latency
delivery path (:meth:`EthernetBackhaul.send_control`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator

#: Default one-way latency: wire + switch + kernel/user handoff.
DEFAULT_LATENCY_US = 300
#: Prioritized control-packet path: bypasses data queues (paper §3.1.2).
CONTROL_LATENCY_US = 150
#: Gigabit Ethernet.
DEFAULT_BANDWIDTH_BPS = 1_000_000_000
#: Seed for the loss stream constructed when the caller sets a
#: ``loss_rate`` without supplying ``loss_rng`` — loss must never be
#: silently disabled, and it must stay reproducible.
DEFAULT_LOSS_SEED = 0xB10C1055

#: Message kinds that model a reliable (TCP-like) transport: exempt
#: from the Bernoulli loss knob, though injected faults (node down,
#: partition) still drop them.  Keeping the exemption kind-based means
#: the loss stream's draw sequence over data/control traffic is
#: unchanged whether liveness or HA messaging is active.
RELIABLE_KINDS: FrozenSet[str] = frozenset(
    {"heartbeat", "ctrl-heartbeat", "ha-checkpoint", "ctrl-takeover"}
)

#: Message kinds whose "tx" trace events are per-packet volume: they
#: are tagged ``detail`` so a default (non-detail) traced drive keeps
#: only the protocol-level control handshakes.
_DETAIL_KINDS: FrozenSet[str] = frozenset(
    {"data", "csi", "uplink", "ba-fwd", "heartbeat", "ctrl-heartbeat", "keepalive"}
)


@dataclass
class BackhaulStats:
    """Counters for traffic accounting on the backhaul."""

    messages: int = 0
    bytes: int = 0
    control_messages: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    #: Messages swallowed by injected faults (node down / partition),
    #: kept apart from the random-loss ``dropped`` counter.
    fault_dropped: int = 0

    def record(self, kind: str, size_bytes: int, control: bool) -> None:
        self.messages += 1
        self.bytes += size_bytes
        if control:
            self.control_messages += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class EthernetBackhaul:
    """Message transport between controller and APs.

    Receivers register a handler taking ``(src_id, kind, payload)``;
    ``payload`` is an arbitrary Python object (a Packet, a CsiReport, a
    control-message dataclass...). ``kind`` routes it inside the node.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_us: int = DEFAULT_LATENCY_US,
        control_latency_us: int = CONTROL_LATENCY_US,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        loss_rate: float = 0.0,
        loss_rng=None,
    ):
        """``loss_rate`` drops each message independently — Ethernet is
        effectively lossless in the deployment, but WGTT's 30 ms stop
        retransmission exists exactly because control packets *can* be
        lost (paper §3.1.2); fault-injection tests use this.

        ``loss_rate == 1.0`` (a black-holed wire) is a legal fault to
        inject; only values outside ``[0, 1]`` are rejected.  When no
        ``loss_rng`` is supplied a default seeded stream is built on
        first use, so a non-zero ``loss_rate`` is never silently a
        no-op.
        """
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        self._sim = sim
        self.latency_us = latency_us
        self.control_latency_us = control_latency_us
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._handlers: Dict[str, Callable[[str, str, object], None]] = {}
        self._port_busy_until: Dict[str, int] = {}
        self.stats = BackhaulStats()
        self.dropped = 0
        # -- fault-injection state (all empty in fault-free runs) -----
        #: Endpoints whose NIC is dark (crashed AP): anything they send
        #: or should receive vanishes silently.
        self._down_nodes: set = set()
        #: Active partitions: id -> (side_a, side_b); a message crossing
        #: from one side to the other is dropped.
        self._partitions: Dict[int, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        self._next_partition_id = 1
        #: Per-directed-link extra-delay jitter: (src, dst) -> (max_us,
        #: rng).  Varying extra delays reorder messages naturally.
        self._link_jitter: Dict[
            Tuple[str, str], Tuple[int, np.random.Generator]
        ] = {}

    def register(self, node_id: str, handler: Callable[[str, str, object], None]):
        """Attach a node to the LAN."""
        if node_id in self._handlers:
            raise ValueError(f"{node_id!r} already attached to backhaul")
        self._handlers[node_id] = handler

    def is_attached(self, node_id: str) -> bool:
        return node_id in self._handlers

    # ------------------------------------------------------------------
    # fault injection (crash / partition / jitter)
    # ------------------------------------------------------------------

    def set_node_down(self, node_id: str, down: bool = True) -> None:
        """Silence an endpoint (crashed AP): its port neither sends nor
        receives until brought back up.  Registration is untouched —
        the node keeps its handler for when it restarts."""
        if down:
            self._down_nodes.add(node_id)
        else:
            self._down_nodes.discard(node_id)

    def is_node_down(self, node_id: str) -> bool:
        return node_id in self._down_nodes

    def partition(
        self, side_a: Iterable[str], side_b: Iterable[str]
    ) -> int:
        """Install a partition between two endpoint sets; messages that
        would cross it are dropped.  Returns a handle for :meth:`heal`."""
        a, b = frozenset(side_a), frozenset(side_b)
        if a & b:
            raise ValueError("partition sides must be disjoint")
        partition_id = self._next_partition_id
        self._next_partition_id += 1
        self._partitions[partition_id] = (a, b)
        return partition_id

    def heal(self, partition_id: Optional[int] = None) -> None:
        """Remove one partition (or all of them when id is None)."""
        if partition_id is None:
            self._partitions.clear()
        else:
            self._partitions.pop(partition_id, None)

    def partitioned(self, src_id: str, dst_id: str) -> bool:
        """True when an active partition separates the two endpoints."""
        for side_a, side_b in self._partitions.values():
            if (src_id in side_a and dst_id in side_b) or (
                src_id in side_b and dst_id in side_a
            ):
                return True
        return False

    def set_link_jitter(
        self,
        src_id: str,
        dst_id: str,
        jitter_us: int,
        rng: np.random.Generator,
    ) -> None:
        """Add uniform extra delay in ``[0, jitter_us]`` to every message
        on the directed link — enough variance reorders deliveries."""
        if jitter_us < 0:
            raise ValueError("jitter must be non-negative")
        self._link_jitter[(src_id, dst_id)] = (int(jitter_us), rng)

    def clear_link_jitter(
        self, src_id: Optional[str] = None, dst_id: Optional[str] = None
    ) -> None:
        """Remove jitter from one directed link, or from all links."""
        if src_id is None and dst_id is None:
            self._link_jitter.clear()
        else:
            self._link_jitter.pop((src_id, dst_id), None)

    def _fault_blocked(self, src_id: str, dst_id: str) -> bool:
        if not self._down_nodes and not self._partitions:
            return False  # fault-free fast path
        if src_id in self._down_nodes or dst_id in self._down_nodes:
            return True
        return self.partitioned(src_id, dst_id)

    def _loss_draw(self) -> float:
        if self._loss_rng is None:
            self._loss_rng = np.random.default_rng(DEFAULT_LOSS_SEED)
        return self._loss_rng.random()

    def send(
        self,
        src_id: str,
        dst_id: str,
        kind: str,
        payload: object,
        size_bytes: int = 128,
        control: bool = False,
    ) -> None:
        """Deliver ``payload`` to ``dst_id`` after serialization + latency.

        Control messages take the prioritized path: they skip the data
        FIFO's queueing backlog and use the shorter handling latency.
        """
        if dst_id not in self._handlers:
            raise KeyError(f"unknown backhaul destination {dst_id!r}")
        self.stats.record(kind, size_bytes, control)
        tracer = self._sim.obs.trace
        if tracer.active:
            tracer.emit(
                "backhaul",
                "tx",
                track=f"port/{src_id}",
                detail=kind in _DETAIL_KINDS,
                src=src_id,
                dst=dst_id,
                msg=kind,
                bytes=size_bytes,
                control=control,
            )
        if self._fault_blocked(src_id, dst_id):
            self.stats.fault_dropped += 1
            if tracer.active:
                tracer.emit(
                    "backhaul",
                    "fault-drop",
                    track=f"port/{src_id}",
                    detail=kind in _DETAIL_KINDS,
                    src=src_id,
                    dst=dst_id,
                    msg=kind,
                )
            return
        # Liveness and HA traffic rides a reliable transport in a real
        # deployment (the paper's sta-sync uses per-peer TCP); exempting
        # those kinds from the scalar Bernoulli loss knob also keeps the
        # loss stream's draw sequence for data/control traffic identical
        # whether or not liveness/HA is running.  Injected faults
        # (crash, partition) do drop them — that is what the liveness
        # trackers on both sides detect.
        if self.loss_rate > 0.0 and kind not in RELIABLE_KINDS:
            if self._loss_draw() < self.loss_rate:
                self.dropped += 1
                if tracer.active:
                    tracer.emit(
                        "backhaul",
                        "loss-drop",
                        track=f"port/{src_id}",
                        src=src_id,
                        dst=dst_id,
                        msg=kind,
                    )
                return
        serialization_us = int(size_bytes * 8 / self.bandwidth_bps * 1e6)
        if control:
            delay = self.control_latency_us + serialization_us
        else:
            # FIFO per sender port: messages serialize one at a time.
            start = max(self._sim.now, self._port_busy_until.get(src_id, 0))
            self._port_busy_until[src_id] = start + serialization_us
            delay = (start - self._sim.now) + serialization_us + self.latency_us
        jitter = self._link_jitter.get((src_id, dst_id))
        if jitter is not None:
            max_us, rng = jitter
            if max_us > 0:
                delay += int(rng.integers(0, max_us + 1))
        handler = self._handlers[dst_id]
        self._sim.schedule(delay, lambda: handler(src_id, kind, payload))

    def send_control(
        self, src_id: str, dst_id: str, kind: str, payload: object,
        size_bytes: int = 64,
    ) -> None:
        """Shorthand for the prioritized control path."""
        self.send(src_id, dst_id, kind, payload, size_bytes, control=True)

    def broadcast(
        self,
        src_id: str,
        kind: str,
        payload: object,
        size_bytes: int = 128,
        control: bool = False,
    ) -> None:
        """Deliver to every attached node except the sender."""
        for node_id in list(self._handlers):
            if node_id != src_id:
                self.send(src_id, node_id, kind, payload, size_bytes, control)
