"""Endurance-run (soak) subsystem: workload churn, fault pressure,
admission control, and SLO-guarded execution.

A soak exercises the WGTT array the way a transit operator would run
it: hour-scale sim time, a heavy-tailed workload carried by a churning
rider population (Poisson arrivals, dwell-bounded departures), rolling
background faults, and a guard that samples the metrics registry on a
sim-time cadence, streams JSONL telemetry, and fails fast on any
bounded-memory, determinism, or latency/loss violation.

Composition::

    WorkloadPlan.generate(...)   # seeded churn + flow schedule (data)
    FaultPlan.soak(...)          # seeded continuous chaos (data)
    ChurnDriver                  # executes arrivals/departures/flows
    SloGuard                     # samples, streams, asserts
    SoakHarness.run()            # wires it all and returns SoakResult

Everything is drawn from named rng streams before the simulation
starts, so a whole soak — churn, faults, traffic — is byte-reproducible
from its seed.
"""

from repro.soak.churn import ChurnDriver
from repro.soak.harness import SoakConfig, SoakHarness, SoakResult, run_soak
from repro.soak.slo import SloBudgets, SloGuard, SloViolation, SoakViolationError
from repro.soak.workload import (
    ClientSession,
    FlowSpec,
    WorkloadConfig,
    WorkloadPlan,
)

__all__ = [
    "ChurnDriver",
    "ClientSession",
    "FlowSpec",
    "SloBudgets",
    "SloGuard",
    "SloViolation",
    "SoakConfig",
    "SoakHarness",
    "SoakResult",
    "SoakViolationError",
    "WorkloadConfig",
    "WorkloadPlan",
    "run_soak",
]
