"""One-call soak execution: build, churn, guard, report.

:func:`run_soak` (or :class:`SoakHarness`) assembles a WGTT testbed
with an initially *empty* road, a seeded :class:`WorkloadPlan`, a
seeded continuous :class:`FaultPlan`, optional admission control, and
an :class:`SloGuard`, runs it for the configured sim time, and returns
a :class:`SoakResult` carrying the determinism fingerprint, the
violation list, and the aggregate run statistics.

Reproducibility: the harness derives every random stream from the one
seed (spawned child registries per concern), resets the process-global
PHY memos before building (they carry identity-keyed entries across
in-process runs), and never reads wall-clock time — two calls with the
same :class:`SoakConfig` produce byte-identical telemetry and equal
fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsStream
from repro.sim.engine import SECOND
from repro.sim.rng import RngRegistry
from repro.soak.churn import ChurnDriver
from repro.soak.slo import SloBudgets, SloGuard
from repro.soak.workload import WorkloadConfig, WorkloadPlan


@dataclass
class SoakConfig:
    """Everything a soak run needs (picklable, sweep-friendly)."""

    seed: int = 1
    duration_s: float = 60.0
    num_aps: int = 8
    #: Continuous-chaos intensity (see :meth:`FaultPlan.soak`); 0
    #: disables fault injection entirely.
    fault_intensity: float = 1.0
    #: Message-level adversary intensity layered on top of the chaos
    #: plan (duplication/replay/corruption/one-way/gray windows); 0
    #: keeps soak plans byte-identical to the pre-adversary baseline.
    adversary_intensity: float = 0.0
    #: Arm the runtime protocol-invariant checker; breaches surface as
    #: ``kind="invariant"`` SLO violations.  Off by default: the
    #: subscription wakes the trace stream, so checked runs are not
    #: fingerprint-comparable with unchecked ones.
    invariants_enabled: bool = False
    #: Build the controller with per-client fair pacing enabled.
    admission_enabled: bool = False
    #: Enable the serving-AP watermark backpressure signal (the soak
    #: default; the library default stays off for bit-identity).
    backpressure_enabled: bool = True
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    budgets: SloBudgets = field(default_factory=SloBudgets)
    #: Guard sampling cadence and checkpoint thinning.
    sample_interval_s: float = 1.0
    checkpoint_every: int = 5
    #: JSONL telemetry path; None keeps the run file-free.
    telemetry_path: Optional[str] = None
    #: Raise on the first violation instead of collecting.
    fail_fast: bool = False

    @property
    def duration_us(self) -> int:
        return int(self.duration_s * SECOND)


@dataclass
class SoakResult:
    """Outcome of one soak run."""

    config: SoakConfig
    ok: bool
    fingerprint: str
    violations: List[Dict[str, object]]
    samples: int
    churn_stats: Dict[str, int]
    delivery_ratio: Optional[float]
    mean_delay_us: Optional[float]
    final_metrics: Dict[str, object]

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        delivery = (
            f"{self.delivery_ratio:.3f}"
            if self.delivery_ratio is not None
            else "n/a"
        )
        return (
            f"soak seed={self.config.seed} "
            f"dur={self.config.duration_s:.0f}s: {status}; "
            f"arrivals={self.churn_stats['arrivals']} "
            f"departures={self.churn_stats['departures']} "
            f"delivery={delivery} "
            f"fingerprint={self.fingerprint[:16]}"
        )


class SoakHarness:
    """Builds and runs one soak from a :class:`SoakConfig`."""

    def __init__(self, config: SoakConfig):
        self.config = config

    def run(self) -> SoakResult:
        from repro.phy.per import reset_phy_memo_stats, reset_phy_memos
        from repro.scenarios.testbed import Testbed, TestbedConfig
        from repro.core.config import WgttConfig

        cfg = self.config
        # Identity-keyed PHY memo entries and their hit/miss counters
        # survive across in-process runs and would make the second
        # same-seed run stream different telemetry — reset both for a
        # clean determinism baseline.
        reset_phy_memos()
        reset_phy_memo_stats()

        wgtt = WgttConfig(
            backpressure_enabled=cfg.backpressure_enabled,
            admission_enabled=cfg.admission_enabled,
        )
        testbed_config = TestbedConfig(
            seed=cfg.seed,
            scheme="wgtt",
            num_aps=cfg.num_aps,
            client_tracks=[],  # the road starts empty; churn fills it
            wgtt=wgtt,
        )
        plan = WorkloadPlan.generate(
            RngRegistry(cfg.seed).spawn("soak-workload"),
            cfg.duration_us,
            testbed_config.road_length_m(),
            cfg.workload,
        )
        fault_plan: Optional[FaultPlan] = None
        if cfg.fault_intensity > 0 or cfg.adversary_intensity > 0:
            fault_plan = FaultPlan.soak(
                RngRegistry(cfg.seed).spawn("soak-faults"),
                [f"ap{i}" for i in range(cfg.num_aps)],
                cfg.duration_us,
                intensity=cfg.fault_intensity,
                adversary_intensity=cfg.adversary_intensity,
            )
        testbed_config.fault_plan = fault_plan
        testbed = Testbed(testbed_config)
        checker = (
            testbed.install_invariant_checker()
            if cfg.invariants_enabled
            else None
        )

        churn = ChurnDriver(testbed, plan)
        testbed.obs.metrics.register_collector(churn.collect_metrics)
        churn.arm()

        stream: Optional[MetricsStream] = None
        if cfg.telemetry_path is not None:
            stream = MetricsStream(cfg.telemetry_path)
        budgets = cfg.budgets
        budgets.max_concurrent = cfg.workload.max_concurrent
        guard = SloGuard(
            testbed,
            churn,
            interval_us=int(cfg.sample_interval_s * SECOND),
            checkpoint_every=cfg.checkpoint_every,
            budgets=budgets,
            stream=stream,
            fail_fast=cfg.fail_fast,
            invariants=checker,
        )
        guard.start()

        try:
            testbed.run_seconds(cfg.duration_s)
            churn.finalize()
            report = guard.finish()
        finally:
            if stream is not None:
                stream.close()

        return SoakResult(
            config=cfg,
            ok=bool(report["ok"]),
            fingerprint=str(report["fingerprint"]),
            violations=list(report["violations"]),  # type: ignore[arg-type]
            samples=int(report["samples"]),  # type: ignore[call-overload]
            churn_stats=dict(churn.stats),
            delivery_ratio=churn.delivery_ratio(),
            mean_delay_us=churn.mean_delay_us(),
            final_metrics=testbed.obs.metrics.snapshot(),
        )


def run_soak(config: Optional[SoakConfig] = None) -> SoakResult:
    """Convenience wrapper: ``run_soak(SoakConfig(seed=7))``."""
    return SoakHarness(config if config is not None else SoakConfig()).run()
