"""Executes a :class:`WorkloadPlan` against a live testbed.

The driver is deliberately dumb: every decision (who arrives when,
how long they stay, what they transfer) was drawn into the plan before
the run started.  At execution time it only wires testbed primitives —
:meth:`Testbed.add_client`, flow attachment, :meth:`depart_client`,
:meth:`retire_client` — and keeps bounded accounting.

The one piece of genuine runtime logic is departure-under-failure: a
rider can leave while the controller is crashed, in which case the
protocol-level deregistration cannot be delivered.  The local teardown
(radio off, timers stopped, port scheduled for removal) happens
immediately; the deregistration parks in a pending set that a retry
timer drains once a live controller is back.  Without the retry, every
departure during controller downtime would leak selection windows and
index cursors forever — exactly the class of slow leak the soak exists
to catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.sim.engine import MS, Timer
from repro.soak.workload import ClientSession, WorkloadPlan

if TYPE_CHECKING:
    from repro.scenarios.testbed import Testbed
    from repro.transport.udp import UdpSink, UdpSource

#: How often pending (controller-was-down) deregistrations are retried.
DEREG_RETRY_INTERVAL_US = 500 * MS


class _ActiveRider:
    """Book-keeping for one admitted client."""

    __slots__ = ("session", "sources", "sinks", "stop_timers")

    def __init__(self, session: ClientSession):
        self.session = session
        self.sources: List["UdpSource"] = []
        self.sinks: List["UdpSink"] = []
        self.stop_timers: List[Timer] = []


class ChurnDriver:
    """Arrival/departure/flow executor for one soak run."""

    def __init__(self, testbed: "Testbed", plan: WorkloadPlan):
        if testbed.config.scheme != "wgtt":
            raise ValueError("soak churn targets the WGTT scheme")
        self._testbed = testbed
        self._plan = plan
        self._active: Dict[str, _ActiveRider] = {}
        #: Departed riders whose deregistration could not be delivered
        #: (controller down at departure time); drained by a retry timer.
        self._pending_dereg: List[str] = []
        self._retry_timer = Timer(testbed.sim, self._retry_dereg)
        self.stats = {
            "arrivals": 0,
            "departures": 0,
            "rejected": 0,
            "flows_started": 0,
            "flows_finished": 0,
            "dereg_deferred": 0,
            "dereg_retried": 0,
            # Aggregated flow outcomes (running totals, bounded memory).
            "packets_offered": 0,
            "packets_delivered": 0,
            "delay_sum_us": 0,
        }
        self._armed = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every planned arrival (departures chain off them)."""
        if self._armed:
            raise RuntimeError("churn driver already armed")
        self._armed = True
        sim = self._testbed.sim
        for session in self._plan:
            sim.schedule_at(
                max(session.arrive_us, sim.now),
                lambda s=session: self._arrive(s),
            )

    def active_count(self) -> int:
        return len(self._active)

    # ------------------------------------------------------------------
    # arrival
    # ------------------------------------------------------------------

    def _arrive(self, session: ClientSession) -> None:
        from repro.mobility.vehicle import VehicleTrack

        testbed = self._testbed
        if len(self._active) >= self._plan.config.max_concurrent:
            self.stats["rejected"] += 1
            return
        track = VehicleTrack(
            testbed.road,
            start_x=session.start_x,
            speed_mph=session.speed_mph,
            direction=session.direction,
            start_time_us=testbed.sim.now,
        )
        testbed.add_client(track, client_id=session.client_id)
        rider = _ActiveRider(session)
        self._active[session.client_id] = rider
        self.stats["arrivals"] += 1
        self._start_flows(rider)
        testbed.sim.schedule(
            session.dwell_us, lambda: self._depart(session.client_id)
        )

    def _start_flows(self, rider: _ActiveRider) -> None:
        testbed = self._testbed
        client_id = rider.session.client_id
        index = len(testbed.clients) - 1  # just appended by add_client
        for j, flow in enumerate(rider.session.flows):
            flow_id = f"{client_id}-f{j}"
            if flow.kind == "udp-dl":
                source, sink = testbed.add_downlink_udp_flow(
                    client_index=index,
                    rate_bps=flow.rate_bps,
                    flow_id=flow_id,
                )
            else:
                source, sink = testbed.add_uplink_udp_flow(
                    client_index=index,
                    rate_bps=flow.rate_bps,
                    flow_id=flow_id,
                )
            source.start(delay_us=flow.start_offset_us)
            rider.sources.append(source)
            rider.sinks.append(sink)
            self.stats["flows_started"] += 1
            stop_timer = Timer(
                testbed.sim, lambda s=source: self._finish_flow(s)
            )
            stop_timer.start(flow.start_offset_us + flow.duration_us)
            rider.stop_timers.append(stop_timer)

    def _finish_flow(self, source: "UdpSource") -> None:
        source.stop()
        self.stats["flows_finished"] += 1

    # ------------------------------------------------------------------
    # departure
    # ------------------------------------------------------------------

    def _depart(self, client_id: str) -> None:
        rider = self._active.pop(client_id, None)
        if rider is None:
            return
        self.stats["departures"] += 1
        testbed = self._testbed
        for timer in rider.stop_timers:
            timer.stop()
        for source in rider.sources:
            source.stop()
        self._harvest(rider)
        active = testbed.active_controller()
        if active is not None and active.alive:
            active.deregister_client(client_id)
        else:
            # Controller down: park the dereg, retry until delivered.
            self._pending_dereg.append(client_id)
            self.stats["dereg_deferred"] += 1
            if not self._retry_timer.armed:
                self._retry_timer.start(DEREG_RETRY_INTERVAL_US)
        testbed.retire_client(client_id)

    def _harvest(self, rider: _ActiveRider) -> None:
        """Fold the rider's flow measurements into running totals and
        free the server-side sinks (bounded-memory requirement)."""
        for source, sink in zip(rider.sources, rider.sinks):
            self.stats["packets_offered"] += source.packets_sent
            self.stats["packets_delivered"] += sink.packets_received()
            self.stats["delay_sum_us"] += sum(
                d for _, _, _, d in sink.arrivals
            )
            self._testbed.server_host.detach_udp_sink(sink.flow_id)

    def _retry_dereg(self) -> None:
        active = self._testbed.active_controller()
        if active is not None and active.alive:
            pending, self._pending_dereg = self._pending_dereg, []
            for client_id in pending:
                active.deregister_client(client_id)
                self.stats["dereg_retried"] += 1
        if self._pending_dereg:
            self._retry_timer.start(DEREG_RETRY_INTERVAL_US)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def pending_dereg_count(self) -> int:
        return len(self._pending_dereg)

    def delivery_ratio(self) -> Optional[float]:
        """Delivered/offered over every *finished* rider; None early."""
        offered = self.stats["packets_offered"]
        if offered == 0:
            return None
        return self.stats["packets_delivered"] / offered

    def mean_delay_us(self) -> Optional[float]:
        delivered = self.stats["packets_delivered"]
        if delivered == 0:
            return None
        return self.stats["delay_sum_us"] / delivered

    def finalize(self) -> None:
        """End-of-run: harvest riders still on the road so the final
        delivery/delay figures cover every flow that ever ran."""
        for client_id in sorted(self._active):
            rider = self._active[client_id]
            for timer in rider.stop_timers:
                timer.stop()
            for source in rider.sources:
                source.stop()
            self._harvest(rider)
        self._retry_timer.stop()

    def collect_metrics(self) -> Dict[str, object]:
        """Metrics-registry collector (wired by the harness)."""
        out: Dict[str, object] = {
            f"churn_{name}": value for name, value in self.stats.items()
        }
        out["churn_active"] = len(self._active)
        out["churn_pending_dereg"] = len(self._pending_dereg)
        return out
