"""SLO / invariant guard for endurance runs.

The guard samples the testbed on a **sim-time** cadence (so two runs of
the same seed sample at identical instants), and on every sample:

* snapshots the :class:`~repro.obs.metrics.MetricsRegistry` and streams
  it as a ``sample`` line to the JSONL telemetry stream (tail -f-able);
* probes every structure that must stay bounded — selection windows,
  dedup window, index cursors, per-AP cyclic queues, hold buffers, the
  channel map's port table, the medium's device table, the engine's
  event heap, the PHY memo LRUs, the admission pacer's backlog — and
  raises a violation the moment one exceeds its hard cap;
* every ``checkpoint_every`` samples, folds the full snapshot into a
  SHA-256 **fingerprint checkpoint** (written as a ``checkpoint``
  line).  Two same-seed runs must produce identical checkpoint chains —
  any divergence pinpoints *when* determinism drifted, not just that
  it did.

At :meth:`finish` the guard additionally asserts the **memory
plateau** (no bounded gauge may still be growing in the final third of
the run) and the **latency/loss budgets** over the churn driver's
aggregated flow outcomes, then emits a structured report.

``fail_fast=True`` raises :class:`SoakViolationError` at the offending
sample; the default collects violations so a CI smoke can report all
of them at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.obs.metrics import MetricsStream
from repro.sim.engine import SECOND, Timer

if TYPE_CHECKING:
    from repro.invariants import InvariantChecker
    from repro.scenarios.testbed import Testbed
    from repro.soak.churn import ChurnDriver


@dataclass(frozen=True)
class SloViolation:
    """One guard assertion failure, machine-readable."""

    t_us: int
    kind: str  # "bounded-memory" | "plateau" | "budget" | "invariant"
    probe: str
    value: float
    limit: float
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "t_us": self.t_us,
            "kind": self.kind,
            "probe": self.probe,
            "value": self.value,
            "limit": self.limit,
            "message": self.message,
        }


class SoakViolationError(AssertionError):
    """Raised in fail-fast mode at the first violated invariant."""

    def __init__(self, violations: List[SloViolation]):
        self.violations = violations
        lines = "; ".join(v.message for v in violations)
        super().__init__(f"soak SLO violated: {lines}")


@dataclass
class SloBudgets:
    """Hard caps the guard enforces.

    ``max_concurrent`` scales the per-client structures; the rest are
    absolute.  Budgets marked end-of-run are only evaluated at
    :meth:`SloGuard.finish`.
    """

    max_concurrent: int = 64
    #: Slack on per-client structure caps (in-flight arrivals/retires).
    client_slack: int = 8
    #: Engine event-heap ceiling (events).
    max_pending_events: int = 250_000
    #: End-of-run delivered/offered floor over all finished flows.
    min_delivery_ratio: float = 0.30
    #: End-of-run mean one-way delay ceiling (µs) over delivered pkts.
    max_mean_delay_us: float = 1 * SECOND
    #: Plateau test: max(final third) must not exceed
    #: max(earlier samples) * tolerance + slack for any bounded gauge.
    plateau_tolerance: float = 1.25
    plateau_slack: int = 16


class SloGuard:
    """Cadenced sampler + invariant checker + telemetry streamer."""

    def __init__(
        self,
        testbed: "Testbed",
        churn: Optional["ChurnDriver"] = None,
        *,
        interval_us: int = 1 * SECOND,
        checkpoint_every: int = 5,
        budgets: Optional[SloBudgets] = None,
        stream: Optional[MetricsStream] = None,
        fail_fast: bool = False,
        invariants: Optional["InvariantChecker"] = None,
    ):
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self._testbed = testbed
        self._churn = churn
        #: Optional runtime protocol-invariant checker; when present,
        #: its breaches surface as ``kind="invariant"`` violations on
        #: the sample cadence (and at :meth:`finish`).
        self._invariants = invariants
        self._interval_us = interval_us
        self._checkpoint_every = max(1, checkpoint_every)
        self.budgets = budgets if budgets is not None else SloBudgets()
        self._stream = stream
        self._fail_fast = fail_fast
        self._timer = Timer(testbed.sim, self._sample)
        self.samples = 0
        self.violations: List[SloViolation] = []
        #: Probe history for the plateau check: probe -> [value, ...].
        self._series: Dict[str, List[float]] = {}
        self._checkpoints: List[str] = []
        self._finished = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._timer.start(self._interval_us)

    def stop(self) -> None:
        self._timer.stop()

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the checkpoint chain — the run's identity."""
        digest = hashlib.sha256()
        for checkpoint in self._checkpoints:
            digest.update(checkpoint.encode("ascii"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def _probe(self) -> Dict[str, float]:
        """Every bounded structure, read without side effects."""
        testbed = self._testbed
        controller = testbed.controller
        out: Dict[str, float] = {
            "engine_pending_events": testbed.sim.pending_events(),
            "channel_ports": len(testbed.channel._ports),
            "medium_devices": len(testbed.medium._devices),
            "clients_active": len(testbed.clients),
            "clients_retiring": len(testbed._retiring),
        }
        if controller is not None:
            out["controller_tracked_clients"] = len(controller._clients)
            out["controller_index_cursors"] = (
                controller._index_alloc.tracked_clients()
            )
            out["selector_series"] = controller.selector.series_count()
            out["dedup_window"] = controller.dedup.window_size()
            if controller._pacer is not None:
                out["admission_backlog"] = controller._pacer.backlog()
                out["admission_clients"] = (
                    controller._pacer.tracked_clients()
                )
        if testbed.wgtt_aps:
            out["ap_cyclic_queues_max"] = max(
                len(ap._cyclic) for ap in testbed.wgtt_aps.values()
            )
            out["ap_hold_buffer_max"] = max(
                len(ap._hold_buffer) for ap in testbed.wgtt_aps.values()
            )
        from repro.phy.per import phy_memo_stats

        out["phy_memo_max"] = max(
            stats["size"] for stats in phy_memo_stats().values()
        )
        if self._churn is not None:
            out["churn_pending_dereg"] = self._churn.pending_dereg_count()
        return out

    def _limits(self) -> Dict[str, float]:
        """Hard cap per probe (absent probes are unbounded-by-policy)."""
        budgets = self.budgets
        testbed = self._testbed
        per_client = budgets.max_concurrent + budgets.client_slack
        num_aps = len(testbed.ap_ids)
        wgtt = testbed.config.wgtt
        limits: Dict[str, float] = {
            "engine_pending_events": budgets.max_pending_events,
            "channel_ports": num_aps + per_client + 2,
            "medium_devices": num_aps + per_client + 2,
            "clients_active": per_client,
            "controller_tracked_clients": per_client,
            "controller_index_cursors": per_client,
            "selector_series": per_client * max(1, num_aps),
            "dedup_window": 0,  # replaced below with the real capacity
            "ap_cyclic_queues_max": per_client,
            "ap_hold_buffer_max": wgtt.ctrl_hold_buffer_slots,
            "admission_backlog": per_client * wgtt.admission_queue_slots,
            "admission_clients": per_client,
            "churn_pending_dereg": per_client,
        }
        controller = testbed.controller
        if controller is not None:
            limits["dedup_window"] = controller.dedup.capacity
        from repro.phy.per import phy_memo_stats

        limits["phy_memo_max"] = max(
            stats["capacity"] for stats in phy_memo_stats().values()
        )
        return limits

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _sample(self) -> None:
        sim = self._testbed.sim
        self.samples += 1
        probes = self._probe()
        for name, value in probes.items():
            self._series.setdefault(name, []).append(float(value))
        snapshot = self._testbed.obs.metrics.snapshot()
        if self._stream is not None:
            self._stream.write(
                sim.now, "sample", {"metrics": snapshot, "probes": probes}
            )
        fresh: List[SloViolation] = []
        limits = self._limits()
        for name, limit in limits.items():
            value = probes.get(name)
            if value is not None and value > limit:
                fresh.append(
                    SloViolation(
                        t_us=sim.now,
                        kind="bounded-memory",
                        probe=name,
                        value=float(value),
                        limit=float(limit),
                        message=(
                            f"{name}={value} exceeds bound {limit} "
                            f"at t={sim.now}us"
                        ),
                    )
                )
        fresh.extend(self._drain_invariants())
        if self.samples % self._checkpoint_every == 0:
            payload = json.dumps(
                {"t_us": sim.now, "metrics": snapshot, "probes": probes},
                sort_keys=True,
                separators=(",", ":"),
            )
            checkpoint = hashlib.sha256(payload.encode()).hexdigest()
            self._checkpoints.append(checkpoint)
            if self._stream is not None:
                self._stream.write(
                    sim.now, "checkpoint", {"sha256": checkpoint}
                )
        self._record(fresh)
        self._timer.start(self._interval_us)

    def _record(self, fresh: List[SloViolation]) -> None:
        if not fresh:
            return
        self.violations.extend(fresh)
        if self._stream is not None:
            for violation in fresh:
                self._stream.write(
                    violation.t_us, "violation", violation.to_dict()
                )
        if self._fail_fast:
            raise SoakViolationError(fresh)

    def _drain_invariants(self) -> List[SloViolation]:
        """Convert the checker's fresh breaches to SLO violations."""
        if self._invariants is None:
            return []
        return [
            SloViolation(
                t_us=breach.t_us,
                kind="invariant",
                probe=breach.invariant,
                value=1.0,
                limit=0.0,
                message=breach.message,
            )
            for breach in self._invariants.drain_new()
        ]

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------

    #: Probes subject to the plateau test: the per-client structures a
    #: reclamation leak would inflate.  Capacity-bounded FIFOs/LRUs
    #: (dedup window, PHY memos, hold buffers, pacing backlog) are
    #: excluded — filling toward a hard cap is their designed behaviour
    #: and the hard cap above already polices them.
    PLATEAU_PROBES = (
        "clients_active",
        "clients_retiring",
        "channel_ports",
        "medium_devices",
        "controller_tracked_clients",
        "controller_index_cursors",
        "selector_series",
        "ap_cyclic_queues_max",
        "admission_clients",
        "churn_pending_dereg",
    )

    def _check_plateau(self) -> List[SloViolation]:
        """No leak-prone gauge may still be growing late in the run."""
        budgets = self.budgets
        out: List[SloViolation] = []
        for name in self.PLATEAU_PROBES:
            series = self._series.get(name, [])
            if len(series) < 6:
                continue
            split = (2 * len(series)) // 3
            early_peak = max(series[:split])
            late_peak = max(series[split:])
            allowed = early_peak * budgets.plateau_tolerance + (
                budgets.plateau_slack
            )
            if late_peak > allowed:
                out.append(
                    SloViolation(
                        t_us=self._testbed.sim.now,
                        kind="plateau",
                        probe=name,
                        value=late_peak,
                        limit=allowed,
                        message=(
                            f"{name} still growing: late peak "
                            f"{late_peak} > allowed {allowed:.1f} "
                            f"(early peak {early_peak})"
                        ),
                    )
                )
        return out

    def _check_budgets(self) -> List[SloViolation]:
        out: List[SloViolation] = []
        if self._churn is None:
            return out
        now = self._testbed.sim.now
        delivery = self._churn.delivery_ratio()
        if (
            delivery is not None
            and delivery < self.budgets.min_delivery_ratio
        ):
            out.append(
                SloViolation(
                    t_us=now,
                    kind="budget",
                    probe="delivery_ratio",
                    value=delivery,
                    limit=self.budgets.min_delivery_ratio,
                    message=(
                        f"delivery ratio {delivery:.3f} below floor "
                        f"{self.budgets.min_delivery_ratio}"
                    ),
                )
            )
        delay = self._churn.mean_delay_us()
        if delay is not None and delay > self.budgets.max_mean_delay_us:
            out.append(
                SloViolation(
                    t_us=now,
                    kind="budget",
                    probe="mean_delay_us",
                    value=delay,
                    limit=self.budgets.max_mean_delay_us,
                    message=(
                        f"mean delay {delay:.0f}us above ceiling "
                        f"{self.budgets.max_mean_delay_us:.0f}us"
                    ),
                )
            )
        return out

    def finish(self) -> Dict[str, object]:
        """Stop sampling, run end-of-run checks, emit the report."""
        if self._finished:
            raise RuntimeError("guard already finished")
        self._finished = True
        self.stop()
        if self._invariants is not None:
            self._invariants.finish()  # one last probe before draining
            self._record(self._drain_invariants())
        self._record(self._check_plateau())
        self._record(self._check_budgets())
        report: Dict[str, object] = {
            "samples": self.samples,
            "checkpoints": len(self._checkpoints),
            "fingerprint": self.fingerprint,
            "violations": [v.to_dict() for v in self.violations],
            "ok": not self.violations,
        }
        if self._stream is not None:
            self._stream.write(self._testbed.sim.now, "summary", report)
        return report
