"""Seeded heavy-tailed workload plans for endurance runs.

A :class:`WorkloadPlan` is pure data, fully materialized before the
simulation starts (the same contract as :class:`repro.faults.plan.FaultPlan`):
a list of :class:`ClientSession` entries — one per rider — each with an
arrival time (Poisson process), a dwell bounded by the vehicle's
transit of the road, a mobility draw (speed, direction, entry point),
and a handful of UDP flows whose byte sizes follow a bounded Pareto
distribution.  Heavy-tailed sizes are the operational reality the
MAC-rate-adaptation vehicular measurements report: most sessions move
a few hundred kilobytes, a few move hundreds of megabytes, and the
admission/backpressure machinery has to survive both.

Every draw comes from a named stream of the caller's
:class:`~repro.sim.rng.RngRegistry`, so a plan is a deterministic
function of ``(seed, config, duration)`` — two generations are
element-identical, which is the foundation of the soak's
byte-reproducibility contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.mobility.road import MPH_TO_MPS
from repro.sim.engine import SECOND
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class FlowSpec:
    """One flow inside a client session (times relative to arrival)."""

    #: "udp-dl" (server → client) or "udp-ul" (client → server).
    kind: str
    #: Offered CBR rate while the flow is active.
    rate_bps: float
    #: Heavy-tailed total transfer size; the flow stops once the
    #: source has offered this many bytes (or the client departs).
    size_bytes: int
    #: Start offset within the session.
    start_offset_us: int

    @property
    def duration_us(self) -> int:
        """How long the source runs to offer ``size_bytes``."""
        return max(1, int(self.size_bytes * 8 / self.rate_bps * SECOND))


@dataclass(frozen=True)
class ClientSession:
    """One rider: arrival, mobility, dwell, and traffic."""

    client_id: str
    arrive_us: int
    dwell_us: int
    speed_mph: float
    direction: int
    start_x: float
    flows: Tuple[FlowSpec, ...]

    @property
    def depart_us(self) -> int:
        return self.arrive_us + self.dwell_us


@dataclass
class WorkloadConfig:
    """Knobs of the churn + traffic generator."""

    #: Poisson client arrival rate over the whole soak.
    arrival_rate_per_s: float = 1.0
    #: Mean of the exponential dwell draw; the actual dwell is
    #: min(draw, vehicle transit duration) and at least ``min_dwell_us``.
    mean_dwell_s: float = 30.0
    min_dwell_us: int = 2 * SECOND
    #: Rider population cap enforced by the churn driver — arrivals
    #: beyond it are rejected (counted), modelling a full bus stop.
    max_concurrent: int = 64
    #: Vehicle speed is drawn uniformly from these choices (mph).
    speed_choices_mph: Tuple[float, ...] = (10.0, 15.0, 25.0, 35.0)
    #: Probability a rider enters at x=0 heading +x (near lane) versus
    #: entering at the far end heading back.
    forward_fraction: float = 0.75
    #: Flows per session: 1 + Poisson(extra_flows_mean).
    extra_flows_mean: float = 0.5
    #: Probability a flow is downlink (the transit-rider asymmetry).
    downlink_fraction: float = 0.8
    #: Bounded-Pareto flow sizes: most sessions small, a heavy tail of
    #: large transfers, hard-capped so one draw cannot dominate a run.
    size_alpha: float = 1.3
    size_min_bytes: int = 64 * 1024
    size_max_bytes: int = 64 * 1024 * 1024
    #: Per-flow offered rate, drawn uniformly in this closed range.
    rate_min_bps: float = 1e6
    rate_max_bps: float = 8e6
    #: Flow start offsets are uniform within this span of the session.
    start_spread_us: int = 2 * SECOND


def _bounded_pareto(u: float, alpha: float, xmin: float, xmax: float) -> float:
    """Inverse-CDF sample of a bounded Pareto from a uniform draw."""
    ratio = (xmin / xmax) ** alpha
    return xmin / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)


@dataclass
class WorkloadPlan:
    """An arrival-ordered churn + traffic schedule (pure data)."""

    sessions: List[ClientSession] = field(default_factory=list)
    config: WorkloadConfig = field(default_factory=WorkloadConfig)

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self):
        return iter(self.sessions)

    def total_offered_bytes(self) -> int:
        return sum(
            flow.size_bytes for s in self.sessions for flow in s.flows
        )

    @classmethod
    def generate(
        cls,
        rng: RngRegistry,
        duration_us: int,
        road_length_m: float,
        config: Optional[WorkloadConfig] = None,
    ) -> "WorkloadPlan":
        """Materialize a plan from named rng streams (``soak/...``).

        Stream-per-concern (arrivals, dwell, mobility, flows, sizes,
        rates) mirrors :meth:`FaultPlan.random`: changing one knob
        never perturbs another concern's draws.
        """
        if duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if road_length_m <= 0:
            raise ValueError("road_length_m must be positive")
        cfg = config if config is not None else WorkloadConfig()

        arrivals_gen = rng.stream("soak/arrivals")
        dwell_gen = rng.stream("soak/dwell")
        mobility_gen = rng.stream("soak/mobility")
        flows_gen = rng.stream("soak/flows")
        sizes_gen = rng.stream("soak/sizes")
        rates_gen = rng.stream("soak/rates")

        duration_s = duration_us / SECOND
        count = int(arrivals_gen.poisson(cfg.arrival_rate_per_s * duration_s))
        arrive_times = sorted(
            int(arrivals_gen.integers(0, duration_us)) for _ in range(count)
        )

        sessions: List[ClientSession] = []
        for i, arrive_us in enumerate(arrive_times):
            speed = cfg.speed_choices_mph[
                int(mobility_gen.integers(0, len(cfg.speed_choices_mph)))
            ]
            forward = mobility_gen.random() < cfg.forward_fraction
            direction = 1 if forward else -1
            start_x = 0.0 if forward else road_length_m
            # Dwell: an exponential "ride time" clipped to the physical
            # transit — the vehicle leaves the modelled road segment.
            transit_us = int(
                road_length_m / (speed * MPH_TO_MPS) * SECOND
            )
            dwell_us = min(
                transit_us,
                int(dwell_gen.exponential(cfg.mean_dwell_s) * SECOND),
            )
            dwell_us = max(cfg.min_dwell_us, dwell_us)

            n_flows = 1 + int(flows_gen.poisson(cfg.extra_flows_mean))
            flows: List[FlowSpec] = []
            for j in range(n_flows):
                kind = (
                    "udp-dl"
                    if flows_gen.random() < cfg.downlink_fraction
                    else "udp-ul"
                )
                size = int(
                    _bounded_pareto(
                        float(sizes_gen.random()),
                        cfg.size_alpha,
                        float(cfg.size_min_bytes),
                        float(cfg.size_max_bytes),
                    )
                )
                rate = float(
                    rates_gen.uniform(cfg.rate_min_bps, cfg.rate_max_bps)
                )
                offset = int(flows_gen.integers(0, cfg.start_spread_us))
                flows.append(
                    FlowSpec(
                        kind=kind,
                        rate_bps=rate,
                        size_bytes=size,
                        start_offset_us=offset,
                    )
                )
            sessions.append(
                ClientSession(
                    client_id=f"rider{i:05d}",
                    arrive_us=arrive_us,
                    dwell_us=dwell_us,
                    speed_mph=speed,
                    direction=direction,
                    start_x=start_x,
                    flows=tuple(flows),
                )
            )
        return cls(sessions=sessions, config=cfg)
